open Cm_machine
open Cm_memory
open Cm_core
open Thread.Infix

type sm_sync = Atomic_toggle | Lock_per_balancer

type mode = Messaging of Prelude.access | Shared_memory

let mode_name = function
  | Messaging Prelude.Rpc -> "rpc"
  | Messaging Prelude.Migrate -> "migrate"
  | Shared_memory -> "shared_memory"

(* Cycles of user code per balancer/counter visit under the messaging
   runtime — the "User code" row of the paper's Table 5. *)
let user_work = 150

(* CPU work per visit in shared-memory mode: toggle-and-route only; the
   messaging overheads do not exist, memory stalls dominate instead. *)
let sm_work = 30

(* Messaging-mode object states.  Destinations use the static network
   description; objects are looked up through the arrays in [repr]. *)
type bal = { mutable toggle : bool; top : Balancer_net.dest; bot : Balancer_net.dest }

type cnt = { mutable count : int; wire : int }

type repr =
  | Msg of {
      bals : bal Prelude.obj array;
      cnts : cnt Prelude.obj array;
      access : Prelude.access;
      (* Per-object method monads, built once here: a visit applies a
         precomputed ['a Thread.t] to (ctx, k) instead of rebuilding the
         invoke/call closure chain per hop, and the method bodies run
         through the frame fast path — so the steady-state traversal
         allocates nothing per visit. *)
      bal_m : Balancer_net.dest Thread.t array;
      cnt_m : int Thread.t array;
    }
  | Sm of {
      bal_addr : int array;
      locks : Lock.t array;
      cnt_addr : int array;
      sync : sm_sync;
    }

type t = {
  env : Sysenv.t;
  net : Balancer_net.t;
  mode : mode;
  repr : repr;
  issued_rev : int list ref;  (* instrumentation: every value handed out *)
}

(* Shared-memory destination encoding: balancer ids are >= 0; exit wire
   [w] is encoded as [-(w + 1)]. *)
let encode = function Balancer_net.Balancer b -> b | Balancer_net.Exit w -> -(w + 1)

let decode n = if n >= 0 then Balancer_net.Balancer n else Balancer_net.Exit (-n - 1)

(* Method bodies for the messaging objects.  Each closes over its own
   object's state once (at network construction); the per-visit path
   charges the user work through the thread's frame slots — one
   preallocated step closure per object, nothing per visit.  The CPS
   branch is the original closure body, verbatim, for the reference
   engine. *)
let bal_method st =
  let step c =
    let out = if st.toggle then st.bot else st.top in
    st.toggle <- not st.toggle;
    Thread.Frame.call_k c out
  in
  fun c k ->
    if Thread.Frame.on c then begin
      Thread.Frame.save_k c k;
      Thread.Frame.hold_then c user_work step
    end
    else
      (let* () = Thread.compute user_work in
       let out = if st.toggle then st.bot else st.top in
       st.toggle <- not st.toggle;
       Thread.return out)
        c k

let cnt_method issued w st =
  let step c =
    let count = st.count in
    st.count <- st.count + 1;
    let value = (count * w) + st.wire in
    issued := value :: !issued;
    Thread.Frame.call_k c value
  in
  fun c k ->
    if Thread.Frame.on c then begin
      Thread.Frame.save_k c k;
      Thread.Frame.hold_then c user_work step
    end
    else
      (let* () = Thread.compute user_work in
       let count = st.count in
       st.count <- st.count + 1;
       let value = (count * w) + st.wire in
       issued := value :: !issued;
       Thread.return value)
        c k

let create env ?(width = 8) ?(sm_sync = Lock_per_balancer) ?(lock_backoff = (512, 4096))
    ?balancer_procs mode =
  let net = Balancer_net.bitonic width in
  let n = Balancer_net.n_balancers net in
  let n_procs = Machine.n_procs env.Sysenv.machine in
  let procs =
    match balancer_procs with
    | Some a ->
      if Array.length a <> n then invalid_arg "Counting_network.create: placement size mismatch";
      a
    | None -> Array.init n (fun i -> i mod n_procs)
  in
  let counter_proc w = procs.(Balancer_net.feeder_of_exit net w) in
  let issued_rev = ref [] in
  let repr =
    match mode with
    | Messaging access ->
      let prelude = env.Sysenv.prelude in
      let bals =
        Array.init n (fun b ->
            let top, bot = Balancer_net.outputs net b in
            Prelude.make_obj prelude ~home:procs.(b) { toggle = false; top; bot })
      in
      let cnts =
        Array.init width (fun w ->
            Prelude.make_obj prelude ~home:(counter_proc w) { count = 0; wire = w })
      in
      let bal_m = Array.map (fun o -> Prelude.invoke_site prelude ~access o bal_method) bals in
      let cnt_m =
        Array.map (fun o -> Prelude.invoke_site prelude ~access o (cnt_method issued_rev width)) cnts
      in
      Msg { bals; cnts; access; bal_m; cnt_m }
    | Shared_memory ->
      let mem = Sysenv.mem env in
      let bal_addr =
        Array.init n (fun b ->
            let top, bot = Balancer_net.outputs net b in
            let a = Shmem.alloc mem ~home:procs.(b) ~words:3 in
            Shmem.poke mem a 0;
            Shmem.poke mem (a + 1) (encode top);
            Shmem.poke mem (a + 2) (encode bot);
            a)
      in
      (* Balancer locks are extremely contended; probe rarely by
         default ([lock_backoff] is an ablation knob). *)
      let base_backoff, max_backoff = lock_backoff in
      let locks =
        Array.init n (fun b -> Lock.create ~base_backoff ~max_backoff mem ~home:procs.(b))
      in
      let cnt_addr = Array.init width (fun w -> Shmem.alloc mem ~home:(counter_proc w) ~words:1) in
      Sm { bal_addr; locks; cnt_addr; sync = sm_sync }
  in
  { env; net; mode; repr; issued_rev }

let width t = Balancer_net.width t.net

let n_balancers t = Balancer_net.n_balancers t.net

let mode t = t.mode

let record t v = t.issued_rev := v :: !(t.issued_rev)

let traverse_msg t ~bal_m ~cnt_m ~input_wire =
  let prelude = t.env.Sysenv.prelude in
  let first = Balancer_net.input t.net input_wire in
  Prelude.proc prelude (fun c k ->
      (* One cursor closure per traversal; each hop applies the
         balancer's precomputed method monad directly. *)
      let rec step dest =
        match dest with
        | Balancer_net.Balancer b -> bal_m.(b) c step
        | Balancer_net.Exit wire -> cnt_m.(wire) c k
      in
      step first)

let traverse_sm t ~bal_addr ~locks ~cnt_addr ~sync ~input_wire =
  let mem = Sysenv.mem t.env in
  let w = width t in
  let rec go dest =
    match dest with
    | Balancer_net.Balancer b ->
      let base = bal_addr.(b) in
      let* toggle =
        match sync with
        | Atomic_toggle ->
          (* The balancer is a 2-state switch: one atomic
             fetch-and-toggle transfers line ownership and flips it. *)
          Shmem.rmw mem base (fun v -> 1 - v)
        | Lock_per_balancer ->
          (* Ablation: a spin-lock-protected critical section, showing
             the coherence storms test-and-test&set causes on
             write-shared data. *)
          let* () = Lock.acquire locks.(b) in
          let* toggle = Shmem.read mem base in
          let* () = Shmem.write mem base (1 - toggle) in
          let* () = Lock.release locks.(b) in
          Thread.return toggle
      in
      (* The destination words share the balancer's (now owned) line. *)
      let* next = Shmem.read mem (base + if toggle = 0 then 1 else 2) in
      let* () = Thread.compute sm_work in
      go (decode next)
    | Balancer_net.Exit wire ->
      let* count = Shmem.rmw mem cnt_addr.(wire) (fun v -> v + 1) in
      let* () = Thread.compute sm_work in
      let value = (count * w) + wire in
      record t value;
      Thread.return value
  in
  go (Balancer_net.input t.net input_wire)

let traverse t ~input_wire =
  if input_wire < 0 || input_wire >= width t then
    invalid_arg "Counting_network.traverse: bad input wire";
  match t.repr with
  | Msg { bal_m; cnt_m; _ } -> traverse_msg t ~bal_m ~cnt_m ~input_wire
  | Sm { bal_addr; locks; cnt_addr; sync } ->
    traverse_sm t ~bal_addr ~locks ~cnt_addr ~sync ~input_wire

let output_counts t =
  match t.repr with
  | Msg { cnts; _ } ->
    Array.map (fun o -> (Prelude.obj_state t.env.Sysenv.prelude o).count) cnts
  | Sm { cnt_addr; _ } -> Array.map (fun a -> Shmem.peek (Sysenv.mem t.env) a) cnt_addr

let tokens_delivered t = Array.fold_left ( + ) 0 (output_counts t)

let satisfies_step_property t = Balancer_net.step_property ~counts:(output_counts t)

let values_issued t = List.rev !(t.issued_rev)
