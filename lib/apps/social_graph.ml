open Cm_engine
open Cm_machine
open Cm_runtime
open Cm_core
open Thread.Infix

(* The graph is CSR: two flat int arrays hold every adjacency list, and
   each user is one index in the prelude's flat object space (payload =
   the user's own index), so a million-user graph is four int vectors —
   no per-user records anywhere.  Edge targets are Zipf-skewed toward
   low user ids: ids near 0 are the celebrities most walks pass
   through, scattered over the node processors by a multiplicative
   hash so hub load does not pile onto one corner of the mesh. *)
type t = {
  env : Sysenv.t;
  rt : Runtime.t;
  n : int;
  offsets : int array;  (* length n+1; user u's friends at [offsets.(u), offsets.(u+1)) *)
  edges : int array;
  objs : int Prelude.obj array;
  (* The fused visit method-sites (one per mechanism): every walk hop
     and fan-out visit is a [Runtime.msite] invocation — allocation-free
     steady state, digests identical to the generic path.  [fused =
     false] keeps the generic composition for the A/B reference arm. *)
  fused : bool;
  visit_rpc : int Runtime.msite;
  visit_mig : int Runtime.msite;
}

(* CPU cost of one visit: touch the profile plus a few cycles per
   friend-list entry scanned. *)
let visit_work deg = 30 + (3 * deg)

(* Fused visit body: degree read straight from the CSR offsets, one
   profile-scan hold, finish with the degree — the frame twin of
   [visit_method], reading its operand (the user id) from the
   method-site registers. *)
let visit_frame_body offsets =
  let done_ c =
    let u = Runtime.msite_arg_a c in
    Runtime.msite_finish c (offsets.(u + 1) - offsets.(u))
  in
  fun c ->
    let u = Runtime.msite_arg_a c in
    Thread.Frame.hold_then c (visit_work (offsets.(u + 1) - offsets.(u))) done_

let visit_cps_body offsets ~obj:_ ~a:u ~b:_ =
  let* () = Thread.compute (visit_work (offsets.(u + 1) - offsets.(u))) in
  Thread.return (offsets.(u + 1) - offsets.(u))

let create env ~n ?(avg_degree = 8) ?(skew = 0.8) ?(fused = true) ~node_procs ~seed () =
  if n <= 0 then invalid_arg "Social_graph.create: n must be positive";
  if avg_degree < 1 then invalid_arg "Social_graph.create: avg_degree must be >= 1";
  if Array.length node_procs = 0 then invalid_arg "Social_graph.create: no node processors";
  let rng = Rng.create ~seed in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + 1 + Rng.int rng ((2 * avg_degree) - 1)
  done;
  let edges = Array.make offsets.(n) 0 in
  let z = Zipf.create ~s:skew ~n in
  for e = 0 to offsets.(n) - 1 do
    edges.(e) <- Zipf.sample z rng
  done;
  let k = Array.length node_procs in
  let home_of u = node_procs.(abs (u * 2654435761) mod k) in
  let p = env.Sysenv.prelude in
  let objs = Array.init n (fun u -> Prelude.make_obj p ~home:(home_of u) u) in
  let rt = Sysenv.runtime env in
  let space = Prelude.space p in
  let mk access =
    Runtime.msite rt ~access ~space ~args_words:8 ~result_words:2
      ~frame_body:(visit_frame_body offsets) ~cps_body:(visit_cps_body offsets)
  in
  {
    env;
    rt;
    n;
    offsets;
    edges;
    objs;
    fused;
    visit_rpc = mk Prelude.Rpc;
    visit_mig = mk Prelude.Migrate;
  }

let n_users t = t.n

let degree t u = t.offsets.(u + 1) - t.offsets.(u)

let friend t u j = t.edges.(t.offsets.(u) + j)

let home t u = Prelude.obj_home t.env.Sysenv.prelude t.objs.(u)

(* Visit user [cur]: the method runs at the user's home and charges the
   profile-scan cost; the result is the user's degree. *)
let visit_method t cur _state =
  let* () = Thread.compute (visit_work (degree t cur)) in
  Thread.return (degree t cur)

let visit_generic t ~access cur =
  Runtime.call t.rt ~access ~home:(home t cur) ~args_words:8 ~result_words:2
    (visit_method t cur (Prelude.obj_state t.env.Sysenv.prelude t.objs.(cur)))

let visit_ms t ~access =
  match (access : Prelude.access) with Rpc -> t.visit_rpc | Migrate -> t.visit_mig

let visit t ~access cur c k =
  if t.fused then Runtime.msite_call (visit_ms t ~access) ~obj:(t.objs.(cur) :> int) ~a:cur ~b:0 c k
  else visit_generic t ~access cur c k

(* A [steps]-hop walk: visit the current user, then follow a uniformly
   chosen friend edge.  The next hop is drawn in the walking thread
   (from its own stream, before the visit is issued), so the walk's
   path is a function of the seed alone — identical under RPC and
   migration, which therefore traverse the same homes in the same
   order.  Chained remote accesses are migration's home turf: under
   [Migrate] the activation hops user-to-user and returns once; under
   [Rpc] every hop round-trips to the walker. *)
let walk t ~access ~start ~steps =
  if start < 0 || start >= t.n then invalid_arg "Social_graph.walk: bad start";
  (* Direct-style hop loop: the next edge is drawn (from the walking
     thread's stream) before each visit is issued, exactly as the
     monadic original did, so the path — and the digest — is the same;
     the only per-walk allocations are the scope and the two loop
     closures, shared by all [steps] hops. *)
  Runtime.scope t.rt ~result_words:2 (fun c k ->
      if steps <= 0 then k 0
      else begin
        let cur = ref start in
        let visited = ref 0 in
        let left = ref steps in
        let rec hop () =
          let u = !cur in
          let r = Thread.Frame.rng c in
          cur := friend t u (Rng.int r (degree t u));
          left := !left - 1;
          visit t ~access u c on_visit
        and on_visit d =
          visited := !visited + d;
          if !left > 0 then hop () else k !visited
        in
        hop ()
      end)

(* Friends-of-friends: visit [u], then visit its first [fanout] friends
   in order, summing their degrees — the two-hop neighbourhood scan
   behind "people you may know".  Each visit is its own procedure
   activation, so the result comes back to the requester between
   visits: isolated accesses, not a chain — under [Migrate] the
   activation hops out and returns every time, costing the same two
   messages as RPC's round trip. *)
let scoped_visit t ~access cur c k =
  if t.fused then
    Runtime.msite_scoped (visit_ms t ~access) ~obj:(t.objs.(cur) :> int) ~a:cur ~b:0 c k
  else Runtime.scope t.rt ~result_words:2 (visit_generic t ~access cur) c k

let friends_of_friends t ~access ?(fanout = 8) u =
  if u < 0 || u >= t.n then invalid_arg "Social_graph.friends_of_friends: bad user";
  let scoped cur = scoped_visit t ~access cur in
  let* d = scoped u in
  let m = min d fanout in
  let acc = ref 0 in
  let* () =
    Thread.repeat m (fun j ->
        let* dv = scoped (friend t u j) in
        acc := !acc + dv;
        Thread.return ())
  in
  Thread.return !acc
