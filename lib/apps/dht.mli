(** A distributed hash table — the counterpoint application.

    The paper is explicit that no mechanism wins everywhere ("which
    approach is best depends on the characteristics of the application",
    §1).  The counting network and B-tree both chain accesses, which is
    migration's home turf.  A hash table is the opposite: a [get] or
    [put] touches exactly one bucket and returns — an isolated access,
    where RPC's two messages match migration's hop-plus-return and
    moving the activation buys nothing.  Only [range_sum], which walks a
    run of consecutive buckets, chains accesses again.

    This makes the table the natural showcase for {!Cm_runtime.Adaptive}:
    with [mode = Adaptive] the point-operation sites learn to use RPC
    while the range-scan site learns to migrate.

    Buckets are spread round-robin over the node processors.  The
    shared-memory representation stores each bucket as a fixed-capacity
    block of (key, value) pairs guarded by a spin lock. *)

open Cm_machine

type mode =
  | Messaging of Cm_core.Prelude.access  (** every remote access uses this mechanism *)
  | Adaptive  (** per-site online mechanism selection *)
  | Shared_memory

val mode_name : mode -> string

type t

val create :
  Sysenv.t ->
  ?buckets:int ->
  ?bucket_capacity:int ->
  ?fused:bool ->
  mode:mode ->
  node_procs:int array ->
  unit ->
  t
(** [create env ~mode ~node_procs ()] builds an empty table of
    [buckets] (default 64) buckets, each holding at most
    [bucket_capacity] (default 64) entries, placed round-robin on
    [node_procs].  In [Messaging] mode, [fused] (default [true]) runs
    get/put/range_sum through the table's {!Cm_runtime.Runtime.msite}
    method-site table — allocation-free steady state, digests identical
    to the generic path; [fused:false] keeps the generic
    [scope]/[call] composition (the A/B reference arm of
    [bench sites]). *)

val put : t -> key:int -> value:int -> unit Thread.t
(** [put t ~key ~value] inserts or updates one entry.  Raises
    [Failure] if the target bucket is full. *)

val get : t -> int -> int option Thread.t
(** [get t key] is the value bound to [key], if any. *)

val range_sum : t -> first_bucket:int -> n_buckets:int -> int Thread.t
(** [range_sum t ~first_bucket ~n_buckets] sums every value stored in
    [n_buckets] consecutive buckets (wrapping) — a chained traversal. *)

val n_buckets : t -> int

val bucket_of_key : t -> int -> int
(** The bucket index [key] hashes to. *)

val preload : t -> key:int -> value:int -> unit
(** [preload t ~key ~value] inserts or updates one entry directly,
    bypassing the simulation — for building large (10^6-entry) tables
    before the clock starts.  Raises [Failure] if the bucket is full. *)

val peek : t -> int -> int option
(** [peek t key] is the value bound to [key], read directly (not
    simulated). *)

val size : t -> int
(** Number of entries (not simulated). *)

val contents : t -> (int * int) list
(** All (key, value) pairs, sorted by key (not simulated). *)

val adaptive_report : t -> (string * float * int) list
(** For [Adaptive] mode: each site's name, follow-count estimate and
    sample count (empty list in other modes). *)
