open Cm_machine

type t = {
  machine : Machine.t;
  prelude : Cm_core.Prelude.t;
  shmem : Cm_memory.Shmem.t Lazy.t;
}

(* The coherent-memory substrate is built on first use: it allocates a
   cache per processor, which the message-passing modes (RPC,
   computation migration) never touch.  Construction has no observable
   side effect — its counters register lazily too — so forcing it late
   is invisible to the statistics and the selfcheck digests. *)
let make ?shmem_config machine =
  {
    machine;
    prelude = Cm_core.Prelude.create machine;
    shmem = lazy (Cm_memory.Shmem.create ?config:shmem_config machine);
  }

let mem t = Lazy.force t.shmem

let runtime t = Cm_core.Prelude.runtime t.prelude
