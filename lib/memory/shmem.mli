(** Cache-coherent shared memory — the paper's "data migration" baseline.

    Implements an Alewife-style full-map directory invalidation protocol
    (MSI) over the machine's network.  Each processor has a hardware cache
    ({!Cache}); each allocated line has a home node holding its directory
    entry and backing storage.  Remote misses {e stall} the issuing
    processor (the simulated machine, like the paper's, has no hardware
    multithreading), while directory and remote-cache work is done by
    hardware controllers that consume no CPU cycles — the key asymmetry
    with RPC and computation migration, whose handlers occupy the remote
    CPU.

    Protocol transactions are atomic at issue time: all cache and
    directory state changes for one miss happen in a single simulation
    event, and the requester resumes after the transaction's computed
    latency (request, possible fetch/write-back from an owner, possible
    invalidation round, reply).  Every protocol message is injected into
    the network for traffic accounting, so shared-memory bandwidth —
    dominant in the paper's Figure 3 and Table 2 — is measured on the
    same scale as RPC and migration traffic.

    Word values are tracked end to end: reads return the value of the most
    recent write in simulation order, which the property tests verify. *)

open Cm_machine

type config = {
  line_words : int;  (** words per cache line (paper: 4 = 16 bytes) *)
  cache_slots : int;  (** lines per processor cache (paper: 4096 = 64 KB) *)
  hit_cost : int;  (** CPU cycles per cache access *)
  dir_latency : int;  (** directory/memory controller occupancy per transaction *)
  ctrl_words : int;  (** payload words of a protocol control message *)
}

val default_config : config
(** The paper's geometry: 4-word lines (16 bytes), 4096 slots (64 KB),
    3-cycle hits, and a 30-cycle directory/memory occupancy per
    transaction — an effective figure that also stands in for the
    protocol-level queueing and network contention Proteus modelled and
    this simulator does not. *)

type t

type addr = int
(** A word address in the shared address space. *)

val create : ?config:config -> Machine.t -> t
(** [create machine] attaches a coherent memory system (one cache per
    processor) to [machine]. *)

val config : t -> config

val alloc : t -> home:int -> words:int -> addr
(** [alloc t ~home ~words] reserves [words] words of line-aligned shared
    memory whose directory lives on processor [home]; returns the base
    address.  Contents start as zero. *)

val home_of : t -> addr -> int
(** [home_of t a] is the home processor of [a]'s line.  Raises
    [Invalid_argument] for an unallocated address. *)

(** {1 Simulated accesses}

    These run inside a thread and charge CPU/stall time and network
    traffic. *)

val read : t -> addr -> int Thread.t
(** [read t a] is the current value at [a]. *)

val write : t -> addr -> int -> unit Thread.t
(** [write t a v] stores [v] at [a] (obtaining exclusive ownership). *)

val rmw : t -> addr -> (int -> int) -> int Thread.t
(** [rmw t a f] atomically replaces the value [v] at [a] with [f v] and
    returns [v] — the machine's fetch-and-op primitive (used for locks,
    counters and balancer toggles). *)

val read_block : t -> addr -> int -> int array Thread.t
(** [read_block t a n] reads [n] consecutive words starting at [a]. *)

(** {1 Non-simulated access}

    For building initial data structures before the clock starts and for
    checking final state in tests; no cycles or traffic are charged. *)

val poke : t -> addr -> int -> unit
(** [poke t a v] writes [v] directly to the coherent current copy. *)

val peek : t -> addr -> int
(** [peek t a] reads the coherent current value (honouring a dirty cached
    copy). *)

(** {1 Introspection} *)

val cache_of : t -> int -> Cache.t
(** [cache_of t p] is processor [p]'s cache. *)

val hit_rate : t -> float
(** Machine-wide cache hit rate so far. *)

(** {1 Sanitizers} *)

val validate : t -> unit
(** [validate t] checks the MSI invariants of every allocated line
    against every cache — at most one Modified owner, sharer sets
    consistent with per-cache states, Shared copies identical to home
    memory — raising {!Cm_engine.Check.Violation} on the first breach.
    Runs regardless of {!Cm_engine.Check.enabled}; the per-transaction
    checks the protocol performs itself are gated on it. *)

(** Hooks for fault-injection tests only — never call from production
    code. *)
module For_testing : sig
  val force_second_owner : t -> addr -> pid:int -> unit
  (** [force_second_owner t a ~pid] plants a Modified copy of [a]'s line
      in [pid]'s cache without telling the directory, manufacturing the
      illegal two-owner state that {!validate} must detect. *)
end
