(** A per-processor hardware cache.

    Direct-mapped, with a configurable number of line-sized slots (the
    experiments use the paper's Alewife-like geometry: 64 KB of 16-byte
    lines, i.e. 4096 slots of 4 words).  Each resident line carries a
    coherence state — [Shared] (clean, readable) or [Modified] (exclusive,
    writable) — and a copy of the line's words.

    The cache is a passive structure: the coherence protocol in
    {!Shmem} drives all state changes.  Hit/miss counters accumulate into
    the owning machine's statistics under ["cache.*"]. *)

type state = Shared | Modified

type t

val create : n_slots:int -> line_words:int -> stats:Cm_engine.Stats.t -> t
(** [create ~n_slots ~line_words ~stats] is an empty cache. *)

val line_words : t -> int
(** Words per line. *)

val lookup : t -> line:int -> (state * int array) option
(** [lookup t ~line] is the state and data of [line] if resident (the
    returned array is the live copy — the protocol mutates it in place). *)

val state : t -> line:int -> state option
(** [state t ~line] is the coherence state of [line] if resident. *)

type evicted = { line : int; was_modified : bool; data : int array }
(** Description of a line displaced by {!insert}.  [data] is only
    meaningful when [was_modified] — a clean victim's array may be
    reused as the incoming line's storage. *)

val insert : t -> line:int -> state:state -> data:int array -> evicted option
(** [insert t ~line ~state ~data] makes [line] resident with a private
    copy of [data].  If the slot held a different line, that line is
    evicted and returned (the protocol must write back modified victims).
    Inserting a line already resident updates its state and data in
    place. *)

val set_state : t -> line:int -> state -> unit
(** [set_state t ~line s] changes the state of a resident line.  Raises
    [Invalid_argument] if [line] is not resident. *)

val invalidate : t -> line:int -> int array option
(** [invalidate t ~line] removes [line]; returns its data if it was
    resident in [Modified] state (the caller propagates the dirty data),
    [None] otherwise. *)

val resident_lines : t -> int
(** Number of slots currently holding a line. *)

val record_hit : t -> unit
(** Count one hit (under ["cache.hits"]). *)

val record_miss : t -> unit
(** Count one miss (under ["cache.misses"]). *)

val hit_rate : stats:Cm_engine.Stats.t -> float
(** Machine-wide hit rate from the accumulated counters ([nan] when no
    access was recorded). *)
