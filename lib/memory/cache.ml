open Cm_engine

type state = Shared | Modified

type slot = { mutable tag : int; mutable st : state; mutable data : int array }

type t = {
  slots : slot array;
  words_per_line : int;
  stats : Stats.t;
  hits : Stats.counter;
  misses : Stats.counter;
}

let no_line = -1

let create ~n_slots ~line_words ~stats =
  if n_slots <= 0 || line_words <= 0 then invalid_arg "Cache.create: bad geometry";
  {
    slots = Array.init n_slots (fun _ -> { tag = no_line; st = Shared; data = [||] });
    words_per_line = line_words;
    stats;
    (* Handles bind lazily: the counters appear in [stats] on the first
       recorded access, not at cache creation. *)
    hits = Stats.counter stats "cache.hits";
    misses = Stats.counter stats "cache.misses";
  }

let line_words t = t.words_per_line

let slot_of t line = t.slots.(line mod Array.length t.slots)

let lookup t ~line =
  let s = slot_of t line in
  if s.tag = line then Some (s.st, s.data) else None

let state t ~line =
  let s = slot_of t line in
  if s.tag = line then Some s.st else None

type evicted = { line : int; was_modified : bool; data : int array }

let insert t ~line ~state ~data =
  let s = slot_of t line in
  let evicted =
    if s.tag <> no_line && s.tag <> line then
      Some { line = s.tag; was_modified = s.st = Modified; data = s.data }
    else None
  in
  s.tag <- line;
  s.st <- state;
  (* Reuse the slot's array when it fits — one allocation saved per miss
     fill.  A modified victim's data escapes through [evicted] for
     write-back, so only then must the slot take a fresh copy. *)
  let must_preserve = match evicted with Some e -> e.was_modified | None -> false in
  if (not must_preserve) && Array.length s.data = Array.length data then
    Array.blit data 0 s.data 0 (Array.length data)
  else s.data <- Array.copy data;
  evicted

let set_state t ~line st =
  let s = slot_of t line in
  if s.tag <> line then invalid_arg "Cache.set_state: line not resident";
  s.st <- st

let invalidate t ~line =
  let s = slot_of t line in
  if s.tag = line then begin
    let dirty = if s.st = Modified then Some s.data else None in
    s.tag <- no_line;
    s.data <- [||];
    dirty
  end
  else None

let resident_lines t =
  Array.fold_left (fun acc s -> if s.tag <> no_line then acc + 1 else acc) 0 t.slots

let record_hit t = Stats.Counter.incr t.hits

let record_miss t = Stats.Counter.incr t.misses

let hit_rate ~stats =
  let hits = Stats.get stats "cache.hits" and misses = Stats.get stats "cache.misses" in
  let total = hits + misses in
  if total = 0 then nan else float_of_int hits /. float_of_int total
