open Cm_engine
open Cm_machine
open Thread.Infix

type t = {
  mem : Shmem.t;
  word : Shmem.addr;
  base_backoff : int;
  max_backoff : int;
  mutable writer_holder : int option;  (* maintained only under Check *)
}

let create ?(base_backoff = 64) ?(max_backoff = 2048) mem ~home =
  { mem; word = Shmem.alloc mem ~home ~words:1; base_backoff; max_backoff;
    writer_holder = None }

let writer = -1

let backoff_then l backoff k =
  let* r = Thread.rng in
  let jitter = Rng.int r (max 1 backoff) in
  let* () = Thread.sleep (backoff + jitter) in
  k (min (backoff * 2) l.max_backoff)

let acquire_read l =
  let rec attempt backoff =
    (* Conditional increment: fails (leaves the word alone) while a
       writer holds the lock. *)
    let* old = Shmem.rmw l.mem l.word (fun v -> if v >= 0 then v + 1 else v) in
    if old >= 0 then Thread.return () else backoff_then l backoff attempt
  in
  attempt l.base_backoff

let release_read l =
  let* old = Shmem.rmw l.mem l.word (fun v -> v - 1) in
  if Check.enabled () then
    Check.require (old >= 1)
      "Rwlock: release_read with reader count %d (no matching acquire_read)" old;
  Thread.return ()

let acquire_write l =
  let rec attempt backoff =
    let* old = Shmem.rmw l.mem l.word (fun v -> if v = 0 then writer else v) in
    if old = 0 then
      if Check.enabled () then
        let* me = Thread.tid in
        l.writer_holder <- Some me;
        Thread.return ()
      else Thread.return ()
    else backoff_then l backoff attempt
  in
  attempt l.base_backoff

let release_write l =
  if not (Check.enabled ()) then Shmem.write l.mem l.word 0
  else
    let* me = Thread.tid in
    (match l.writer_holder with
    | Some h when h = me -> ()
    | Some h -> Check.failf "Rwlock: release_write by tid %d, but tid %d holds it" me h
    | None -> Check.failf "Rwlock: release_write by tid %d, but no writer is inside" me);
    l.writer_holder <- None;
    let* old = Shmem.rmw l.mem l.word (fun _ -> 0) in
    Check.require (old = writer) "Rwlock: word read %d at release_write (expected %d)" old
      writer;
    Thread.return ()

let with_read l body =
  let* () = acquire_read l in
  let* result = body () in
  let* () = release_read l in
  Thread.return result

let with_write l body =
  let* () = acquire_write l in
  let* result = body () in
  let* () = release_write l in
  Thread.return result

let free l = Shmem.peek l.mem l.word = 0
