(** Compact sharer sets for the coherence directory.

    A persistent set of processor ids over a universe [[0, n)] fixed at
    creation.  For [n <= 62] the set is a single immediate int bitmask —
    membership updates allocate nothing — and above that a copy-on-write
    [Bytes] bitmap.  Semantically equivalent to [Set.Make(Int)]
    restricted to the universe (the property tests assert this),
    including ascending iteration order, which keeps invalidation
    message order — and therefore run digests — unchanged relative to
    the AVL representation it replaced.

    Values from universes of different sizes must not be mixed; the
    directory creates all sets for one machine with the same [n]. *)

type t

val empty : n:int -> t
(** [empty ~n] is the empty set over universe [[0, n)].  Raises
    [Invalid_argument] when [n <= 0]. *)

val singleton : n:int -> int -> t
(** [singleton ~n p] is [add p (empty ~n)]. *)

val add : int -> t -> t
(** [add p s] is [s] with [p] included.  Raises [Invalid_argument] when
    [p] is outside the representation's capacity ([small_limit] bits for
    small universes, the bitmap length otherwise).  Pids in the slack
    between [n] and that capacity are not distinguished from universe
    members — callers pass machine processor ids, which are always below
    [n]. *)

val remove : int -> t -> t
(** [remove p s] is [s] without [p]. *)

val mem : int -> t -> bool
(** [mem p s] is membership of [p]. *)

val is_empty : t -> bool

val cardinal : t -> int
(** Number of members. *)

val iter : (int -> unit) -> t -> unit
(** [iter f s] applies [f] to every member in ascending order. *)

val to_list : t -> int list
(** Members in ascending order. *)
