(* A persistent set of processor ids drawn from a universe [0, n) fixed
   at creation time.

   Representation: for n <= small_limit the whole set is an immediate
   int bitmask (bit p = processor p) — adding or removing a sharer
   allocates nothing at all.  Above that, the set is a Bytes bitmap and
   updates copy it (copy-on-write keeps the persistent semantics the
   directory relies on: a sharer set captured for an invalidation round
   is not perturbed by the concurrent directory-state update).

   The two representations share one abstract type via the OCaml value
   encoding: an immediate (tagged int) is the mask, a pointer is the
   Bytes.  [Obj.is_int] discriminates — the same trick the runtime
   itself uses for int-or-block values.  This module is the only place
   allowed to look behind the abstraction; everything is covered by the
   ISet-equivalence qcheck property in test/test_memory.ml, including
   the small/big boundary. *)

type t = Obj.t

let small_limit = 62
(* Bits 0..61 of an immediate int; bit 62 is left unused so masks never
   go negative and bit arithmetic stays in the non-negative range. *)

let small (mask : int) : t = Obj.repr mask

let big (b : Bytes.t) : t = Obj.repr b

let mask_of (s : t) : int = Obj.obj s

let bytes_of (s : t) : Bytes.t = Obj.obj s

let is_small (s : t) = Obj.is_int s

let check_pid p = if p < 0 || p >= small_limit then invalid_arg "Sharers: pid out of range"

let empty ~n =
  if n <= 0 then invalid_arg "Sharers.empty: universe must be positive";
  if n <= small_limit then small 0 else big (Bytes.make ((n + 7) / 8) '\000')

let mem p s =
  if is_small s then begin
    check_pid p;
    mask_of s land (1 lsl p) <> 0
  end
  else Char.code (Bytes.get (bytes_of s) (p lsr 3)) land (1 lsl (p land 7)) <> 0

let add p s =
  if is_small s then begin
    check_pid p;
    small (mask_of s lor (1 lsl p))
  end
  else begin
    let b = Bytes.copy (bytes_of s) in
    Bytes.set b (p lsr 3)
      (Char.chr (Char.code (Bytes.get b (p lsr 3)) lor (1 lsl (p land 7))));
    big b
  end

let remove p s =
  if is_small s then begin
    check_pid p;
    small (mask_of s land lnot (1 lsl p))
  end
  else begin
    let b = Bytes.copy (bytes_of s) in
    Bytes.set b (p lsr 3)
      (Char.chr (Char.code (Bytes.get b (p lsr 3)) land lnot (1 lsl (p land 7))));
    big b
  end

let singleton ~n p = add p (empty ~n)

let is_empty s =
  if is_small s then mask_of s = 0
  else begin
    let b = bytes_of s in
    let rec go i = i >= Bytes.length b || (Bytes.get b i = '\000' && go (i + 1)) in
    go 0
  end

(* Iteration is in ascending pid order — the same order as
   [Set.Make(Int).iter] — so replacing the AVL sharer sets cannot
   reorder invalidation messages (and hence cannot move digests). *)
let iter f s =
  if is_small s then begin
    let rec go mask p =
      if mask <> 0 then begin
        if mask land 1 <> 0 then f p;
        go (mask lsr 1) (p + 1)
      end
    in
    go (mask_of s) 0
  end
  else begin
    let b = bytes_of s in
    for i = 0 to Bytes.length b - 1 do
      let byte = Char.code (Bytes.get b i) in
      if byte <> 0 then
        for bit = 0 to 7 do
          if byte land (1 lsl bit) <> 0 then f ((i lsl 3) lor bit)
        done
    done
  end

let popcount_byte =
  (* 256-entry popcount table, built once. *)
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  tbl
[@@cm.shard_safe
  "write-once lookup table: fully initialized at module load, only read afterwards, so \
   concurrent readers in any domain see frozen contents"]

let cardinal s =
  if is_small s then begin
    let rec go mask acc = if mask = 0 then acc else go (mask lsr 8) (acc + popcount_byte.(mask land 0xff)) in
    go (mask_of s) 0
  end
  else begin
    let b = bytes_of s in
    let total = ref 0 in
    for i = 0 to Bytes.length b - 1 do
      total := !total + popcount_byte.(Char.code (Bytes.get b i))
    done;
    !total
  end

let to_list s =
  let acc = ref [] in
  iter (fun p -> acc := p :: !acc) s;
  List.rev !acc
