open Cm_engine
open Cm_machine

type config = {
  line_words : int;
  cache_slots : int;
  hit_cost : int;
  dir_latency : int;
  ctrl_words : int;
}

let default_config =
  { line_words = 4; cache_slots = 4096; hit_cost = 3; dir_latency = 30; ctrl_words = 1 }

type addr = int

(* Directory state of one line, held at its home node. *)
type dir_state = Uncached | Shared_by of Sharers.t | Owned of int

type line_info = {
  home : int;
  mutable dstate : dir_state;
  mem : int array;
  mutable busy_until : int;  (* directory serialization of transactions *)
}

(* Protocol message kinds and coherence counters, interned once per
   memory system so the per-transaction hot path never touches a
   string-keyed table.  The controllers inject through the machine
   transport ([Recv_bare]: the protocol applies state changes at issue
   time and accounts latency itself, so delivery dispatches nothing). *)
type coh_kinds = {
  req : unit Transport.kind;
  fetch : unit Transport.kind;
  wb : unit Transport.kind;
  data : unit Transport.kind;
  inv : unit Transport.kind;
  ack : unit Transport.kind;
  upgack : unit Transport.kind;
}

type coh_counters = {
  read_miss_c : Stats.counter;
  write_miss_c : Stats.counter;
  upgrades_c : Stats.counter;
  invalidations_c : Stats.counter;
  evict_wb_c : Stats.counter;
  evict_clean_c : Stats.counter;
}

(* Pooled wait slots for transaction-completion resumptions: a stalled
   access parks its resumption function and value in a slot and
   schedules the pool's handler, instead of closing a [fun () -> resume
   value] over a [Sim.at] closure event. *)
type waitpool = {
  mutable wfn : Obj.t array;  (* Obj.t -> unit *)
  mutable wv : Obj.t array;
  mutable wfree : int array;
  mutable wtop : int;
}

type t = {
  machine : Machine.t;
  tp : Transport.t;
  cfg : config;
  n_procs : int;
  caches : Cache.t array;
  (* Allocation is a bump cursor, so lines are dense by construction:
     every line in [0, brk) is allocated.  The directory is therefore a
     flat array indexed by line number — the resident-hit path and every
     protocol transaction index it directly, no hashing. *)
  mutable lines : line_info array;
  mutable brk : int;  (* allocation cursor, in lines *)
  kinds : coh_kinds;
  ctrs : coh_counters;
  wp : waitpool;
  wait_hid : Sim.hid;
}

let wp_obj_unit : Obj.t = Obj.repr 0

let wp_fire wp slot =
  let fn : Obj.t -> unit = Obj.obj wp.wfn.(slot) in
  let v = wp.wv.(slot) in
  wp.wfn.(slot) <- wp_obj_unit;
  wp.wv.(slot) <- wp_obj_unit;
  wp.wfree.(wp.wtop) <- slot;
  wp.wtop <- wp.wtop + 1;
  fn v

let wp_alloc wp =
  if wp.wtop = 0 then begin
    let cap = Array.length wp.wfree in
    let ncap = 2 * cap in
    let copy_obj (a : Obj.t array) =
      let n = Array.make ncap wp_obj_unit in
      Array.blit a 0 n 0 cap;
      n
    in
    wp.wfn <- copy_obj wp.wfn;
    wp.wv <- copy_obj wp.wv;
    let nf = Array.make ncap 0 in
    Array.blit wp.wfree 0 nf 0 cap;
    wp.wfree <- nf;
    for k = 0 to cap - 1 do
      wp.wfree.(k) <- cap + k
    done;
    wp.wtop <- cap
  end;
  wp.wtop <- wp.wtop - 1;
  wp.wfree.(wp.wtop)

(* Placeholder for slots in [lines] at or beyond [brk]; never read
   because [info_exn] bounds-checks against [brk] and [alloc] overwrites
   every slot it hands out. *)
(* lint: allow domain-safety — inert placeholder: shared by construction but never mutated and never read (info_exn bounds-checks against brk; alloc overwrites every slot it hands out) *)
let unallocated = { home = -1; dstate = Uncached; mem = [||]; busy_until = 0 }

let create ?(config = default_config) machine =
  (* Every miss walks the global directory (lines/caches) synchronously
     from the faulting processor's event — cross-shard windows would
     interleave those walks differently at different shard counts. *)
  if Machine.shards machine > 1 then
    invalid_arg
      "Shmem.create: coherent shared memory serializes on a machine-global directory and is \
       not shardable; create the machine with ~shards:1";
  let caches =
    Array.init (Machine.n_procs machine) (fun _ ->
        Cache.create ~n_slots:config.cache_slots ~line_words:config.line_words
          ~stats:machine.Machine.stats)
  in
  let tp = Machine.transport machine in
  let stats = machine.Machine.stats in
  let coh name = Transport.kind tp ~recv:Transport.Recv_bare name in
  let wp =
    {
      wfn = Array.make 8 wp_obj_unit;
      wv = Array.make 8 wp_obj_unit;
      wfree = Array.init 8 (fun k -> k);
      wtop = 8;
    }
  in
  let wait_hid = Sim.handler machine.Machine.sim (fun slot -> wp_fire wp slot) in
  {
    machine;
    tp;
    cfg = config;
    n_procs = Machine.n_procs machine;
    caches;
    lines = Array.make 4096 unallocated;
    brk = 0;
    kinds =
      {
        req = coh "coh_req";
        fetch = coh "coh_fetch";
        wb = coh "coh_wb";
        data = coh "coh_data";
        inv = coh "coh_inv";
        ack = coh "coh_ack";
        upgack = coh "coh_upgack";
      };
    ctrs =
      {
        read_miss_c = Stats.counter stats "coh.read_miss";
        write_miss_c = Stats.counter stats "coh.write_miss";
        upgrades_c = Stats.counter stats "coh.upgrades";
        invalidations_c = Stats.counter stats "coh.invalidations";
        evict_wb_c = Stats.counter stats "coh.evict_wb";
        evict_clean_c = Stats.counter stats "coh.evict_clean";
      };
    wp;
    wait_hid;
  }

let config t = t.cfg

let alloc t ~home ~words =
  if words <= 0 then invalid_arg "Shmem.alloc: words must be positive";
  if home < 0 || home >= t.n_procs then invalid_arg "Shmem.alloc: bad home";
  let lw = t.cfg.line_words in
  let n_lines = (words + lw - 1) / lw in
  let first_line = t.brk in
  t.brk <- t.brk + n_lines;
  if t.brk > Array.length t.lines then begin
    let cap = max t.brk (2 * Array.length t.lines) in
    let lines = Array.make cap unallocated in
    Array.blit t.lines 0 lines 0 first_line;
    t.lines <- lines
  end;
  for line = first_line to t.brk - 1 do
    t.lines.(line) <- { home; dstate = Uncached; mem = Array.make lw 0; busy_until = 0 }
  done;
  first_line * lw

let line_of t a = a / t.cfg.line_words

let offset_of t a = a mod t.cfg.line_words

let info_exn t line =
  if line >= 0 && line < t.brk then t.lines.(line)
  else invalid_arg (Printf.sprintf "Shmem: unallocated line %d" line)

let home_of t a = (info_exn t (line_of t a)).home

let stats t = t.machine.Machine.stats

let sim t = t.machine.Machine.sim

(* Inject a protocol message and return its wire latency (including
   link queueing when the contention model is on); protocol state
   changes are applied atomically at issue time, so delivery itself is
   a no-op. *)
let msg t ~src ~dst ~words ~kind = Transport.inject t.tp kind ~src ~dst ~words

(* --- MSI sanitizers (active only under Check) ---------------------- *)

(* Validate the directory entry of [line] against every cache.  The
   protocol applies transactions atomically, so between transactions:
   - Owned o: o holds the only copy, in Modified state;
   - Shared_by s: every resident copy is Shared, listed in s, and
     byte-identical to home memory (s may list stale sharers — clean
     eviction does not notify the directory, as in full-map hardware);
   - Uncached: no cache holds the line. *)
let validate_line t line =
  let info = info_exn t line in
  let state_name = function
    | None -> "absent"
    | Some Cache.Shared -> "Shared"
    | Some Cache.Modified -> "Modified"
  in
  let each f = Array.iteri (fun pid cache -> f pid (Cache.state cache ~line)) t.caches in
  match info.dstate with
  | Owned o ->
    each (fun pid st ->
        if pid = o then
          Check.require (st = Some Cache.Modified)
            "Shmem line %d: directory says Owned %d but its cache copy is %s" line o
            (state_name st)
        else
          Check.require (st = None)
            "Shmem line %d: directory says Owned %d but cache %d also holds it (%s) — \
             single-writer invariant broken"
            line o pid (state_name st))
  | Shared_by s ->
    each (fun pid st ->
        match st with
        | None -> ()
        | Some Cache.Modified ->
          Check.failf
            "Shmem line %d: cache %d holds Modified while the directory says Shared" line pid
        | Some Cache.Shared ->
          Check.require (Sharers.mem pid s)
            "Shmem line %d: cache %d holds a Shared copy but is not in the sharer set" line
            pid;
          (match Cache.lookup t.caches.(pid) ~line with
          | Some (_, d) ->
            Check.require (d = info.mem)
              "Shmem line %d: cache %d's Shared copy diverges from home memory (stale \
               value after downgrade)"
              line pid
          | None -> ()))
  | Uncached ->
    each (fun pid st ->
        Check.require (st = None)
          "Shmem line %d: directory says Uncached but cache %d holds it (%s)" line pid
          (state_name st))

let check_line t line = if Check.enabled () then validate_line t line

let validate t =
  for line = 0 to t.brk - 1 do
    validate_line t line
  done

(* Install [data] for [line] in [pid]'s cache, writing back a displaced
   modified victim. *)
let install t pid line state data =
  match Cache.insert t.caches.(pid) ~line ~state ~data with
  | None -> ()
  | Some ev ->
    if ev.Cache.was_modified then begin
      let vinfo = info_exn t ev.Cache.line in
      (match vinfo.dstate with
      | Owned o -> assert (o = pid)
      | Uncached | Shared_by _ -> assert false);
      Array.blit ev.Cache.data 0 vinfo.mem 0 t.cfg.line_words;
      vinfo.dstate <- Uncached;
      Stats.Counter.incr t.ctrs.evict_wb_c;
      ignore
        (msg t ~src:pid ~dst:vinfo.home ~words:(t.cfg.ctrl_words + t.cfg.line_words)
           ~kind:t.kinds.wb);
      check_line t ev.Cache.line
    end
    else Stats.Counter.incr t.ctrs.evict_clean_c
(* A cleanly evicted line leaves a stale sharer in the directory; later
   invalidations still message it, as in real full-map protocols. *)

(* Read-miss transaction: bring [line] into [pid]'s cache in Shared state.
   Returns the transaction latency.  All state changes happen now. *)
let read_miss t pid line =
  let cfg = t.cfg in
  let info = info_exn t line in
  let home = info.home in
  Stats.Counter.incr t.ctrs.read_miss_c;
  let req = msg t ~src:pid ~dst:home ~words:cfg.ctrl_words ~kind:t.kinds.req in
  let lat = ref (req + cfg.dir_latency) in
  (match info.dstate with
  | Owned o ->
    assert (o <> pid);
    (* Fetch from the owner: it writes back and keeps a Shared copy. *)
    let fetch = msg t ~src:home ~dst:o ~words:cfg.ctrl_words ~kind:t.kinds.fetch in
    let wb = msg t ~src:o ~dst:home ~words:(cfg.ctrl_words + cfg.line_words) ~kind:t.kinds.wb in
    (match Cache.lookup t.caches.(o) ~line with
    | Some (Cache.Modified, d) ->
      Array.blit d 0 info.mem 0 cfg.line_words;
      Cache.set_state t.caches.(o) ~line Cache.Shared
    | Some (Cache.Shared, _) | None -> assert false);
    lat := !lat + fetch + wb + cfg.dir_latency;
    info.dstate <- Shared_by (Sharers.add pid (Sharers.singleton ~n:t.n_procs o))
  | Shared_by s -> info.dstate <- Shared_by (Sharers.add pid s)
  | Uncached -> info.dstate <- Shared_by (Sharers.singleton ~n:t.n_procs pid));
  let data =
    msg t ~src:home ~dst:pid ~words:(cfg.ctrl_words + cfg.line_words) ~kind:t.kinds.data
  in
  lat := !lat + data;
  install t pid line Cache.Shared info.mem;
  check_line t line;
  !lat

(* Invalidate every sharer in [others]; returns the slowest
   invalidate/ack round trip. *)
let invalidate_sharers t ~home ~others line =
  let cfg = t.cfg in
  let slowest = ref 0 in
  Sharers.iter
    (fun sh ->
      Stats.Counter.incr t.ctrs.invalidations_c;
      let inv = msg t ~src:home ~dst:sh ~words:cfg.ctrl_words ~kind:t.kinds.inv in
      let ack = msg t ~src:sh ~dst:home ~words:cfg.ctrl_words ~kind:t.kinds.ack in
      ignore (Cache.invalidate t.caches.(sh) ~line);
      let round = inv + ack in
      if round > !slowest then slowest := round)
    others;
  !slowest

(* Exclusive-ownership transaction (write miss or upgrade).  Afterwards
   [pid]'s cache holds [line] in Modified state; returns the latency. *)
let write_miss t pid line =
  let cfg = t.cfg in
  let info = info_exn t line in
  let home = info.home in
  let req = msg t ~src:pid ~dst:home ~words:cfg.ctrl_words ~kind:t.kinds.req in
  let lat = ref (req + cfg.dir_latency) in
  let had_shared_copy =
    match Cache.state t.caches.(pid) ~line with Some Cache.Shared -> true | _ -> false
  in
  (match info.dstate with
  | Uncached -> ()
  | Shared_by s ->
    let others = Sharers.remove pid s in
    lat := !lat + invalidate_sharers t ~home ~others line
  | Owned o ->
    assert (o <> pid);
    (* Fetch-and-invalidate the current owner. *)
    Stats.Counter.incr t.ctrs.invalidations_c;
    let fetch = msg t ~src:home ~dst:o ~words:cfg.ctrl_words ~kind:t.kinds.fetch in
    let wb = msg t ~src:o ~dst:home ~words:(cfg.ctrl_words + cfg.line_words) ~kind:t.kinds.wb in
    (match Cache.invalidate t.caches.(o) ~line with
    | Some dirty -> Array.blit dirty 0 info.mem 0 cfg.line_words
    | None -> assert false);
    lat := !lat + fetch + wb + cfg.dir_latency);
  info.dstate <- Owned pid;
  if had_shared_copy then begin
    (* Upgrade: data is already present and clean; only an ack returns. *)
    Stats.Counter.incr t.ctrs.upgrades_c;
    let upgack = msg t ~src:home ~dst:pid ~words:cfg.ctrl_words ~kind:t.kinds.upgack in
    lat := !lat + upgack;
    Cache.set_state t.caches.(pid) ~line Cache.Modified
  end
  else begin
    Stats.Counter.incr t.ctrs.write_miss_c;
    let data =
      msg t ~src:home ~dst:pid ~words:(cfg.ctrl_words + cfg.line_words) ~kind:t.kinds.data
    in
    lat := !lat + data;
    install t pid line Cache.Modified info.mem
  end;
  check_line t line;
  !lat

(* The live, writable copy of [line] in [pid]'s cache (which must hold it
   in Modified state). *)
let owned_data t pid line =
  match Cache.lookup t.caches.(pid) ~line with
  | Some (Cache.Modified, d) -> d
  | Some (Cache.Shared, _) | None -> assert false

(* The home directory pipelines read requests but services exclusive
   (ownership-transfer) transactions on a line one at a time: a write
   issued while an earlier transaction is in flight queues behind it.
   This serialization of hot write-shared lines bounds e.g. how fast a
   balancer lock can be handed between processors. *)
let finish_time t line ~exclusive lat =
  let info = info_exn t line in
  let now = Sim.now (sim t) in
  if exclusive then begin
    let start = max now info.busy_until in
    let finish = start + lat in
    info.busy_until <- finish;
    finish
  end
  else
    (* Reads still queue behind a pending exclusive transfer. *)
    max (now + lat) info.busy_until

let resume_after_transaction t line ~exclusive lat k =
  Sim.at (sim t) (finish_time t line ~exclusive lat) k

(* Frame-path completion: park the resumption and its value in a pooled
   wait slot — same fire time, no closure and no closure event. *)
let resume_app t line ~exclusive lat (fn : Obj.t -> unit) (v : Obj.t) =
  let finish = finish_time t line ~exclusive lat in
  let slot = wp_alloc t.wp in
  t.wp.wfn.(slot) <- Obj.repr fn;
  t.wp.wv.(slot) <- v;
  Sim.post_after (sim t) ~delay:(finish - Sim.now (sim t)) t.wait_hid slot

open Thread.Infix

let with_pid (f : int -> 'a Thread.t) : 'a Thread.t =
  let* p = Thread.proc in
  f (Processor.id p)

let read_cps t a =
  let line = line_of t a and off = offset_of t a in
  with_pid (fun pid ->
      let cache = t.caches.(pid) in
      let* () = Thread.compute t.cfg.hit_cost in
      match Cache.lookup cache ~line with
      | Some (_, data) ->
        Cache.record_hit cache;
        Thread.return data.(off)
      | None ->
        Cache.record_miss cache;
        Thread.stall (fun ~resume ->
            let lat = read_miss t pid line in
            let value = (info_exn t line).mem.(off) in
            resume_after_transaction t line ~exclusive:false lat (fun () -> resume value)))

let read_step c =
  let t : t = Thread.Frame.getv3 c in
  let a = Thread.Frame.geti3 c in
  let line = line_of t a and off = offset_of t a in
  let pid = Processor.id (Thread.Frame.proc c) in
  let cache = t.caches.(pid) in
  match Cache.lookup cache ~line with
  | Some (_, data) ->
    Cache.record_hit cache;
    Thread.Frame.call_k c data.(off)
  | None ->
    Cache.record_miss cache;
    let resume : Obj.t -> unit = Thread.Frame.stall_k c in
    let lat = read_miss t pid line in
    let value = (info_exn t line).mem.(off) in
    resume_app t line ~exclusive:false lat resume (Obj.repr value)

let read t a c k =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setv3 c t;
    Thread.Frame.seti3 c a;
    Thread.Frame.hold_then c t.cfg.hit_cost read_step
  end
  else read_cps t a c k

(* Obtain Modified ownership of [a]'s line, then atomically apply
   [mutate] to the cached copy.  Shared by [write] and [rmw]. *)
let exclusive_update_cps t a (mutate : int array -> int -> 'r) : 'r Thread.t =
  let line = line_of t a and off = offset_of t a in
  with_pid (fun pid ->
      let cache = t.caches.(pid) in
      let* () = Thread.compute t.cfg.hit_cost in
      match Cache.lookup cache ~line with
      | Some (Cache.Modified, data) ->
        Cache.record_hit cache;
        Thread.return (mutate data off)
      | Some (Cache.Shared, _) | None ->
        (match Cache.state cache ~line with
        | Some Cache.Shared -> Cache.record_hit cache (* data present, permission miss *)
        | _ -> Cache.record_miss cache);
        Thread.stall (fun ~resume ->
            let lat = write_miss t pid line in
            let result = mutate (owned_data t pid line) off in
            resume_after_transaction t line ~exclusive:true lat (fun () -> resume result)))

(* The exclusive ops share one step; i1 selects the mutation so [write]
   carries its value in an int slot (no mutate closure) and [rmw] only
   ships the caller's own function. *)
let excl_mutate c data off =
  if Thread.Frame.geti1 c = 1 then begin
    data.(off) <- Thread.Frame.geti2 c;
    Obj.repr ()
  end
  else begin
    let f : int -> int = Thread.Frame.getv2 c in
    let old = data.(off) in
    data.(off) <- f old;
    Obj.repr old
  end

let excl_step c =
  let t : t = Thread.Frame.getv3 c in
  let a = Thread.Frame.geti3 c in
  let line = line_of t a and off = offset_of t a in
  let pid = Processor.id (Thread.Frame.proc c) in
  let cache = t.caches.(pid) in
  match Cache.lookup cache ~line with
  | Some (Cache.Modified, data) ->
    Cache.record_hit cache;
    Thread.Frame.call_k c (excl_mutate c data off)
  | Some (Cache.Shared, _) | None ->
    (match Cache.state cache ~line with
    | Some Cache.Shared -> Cache.record_hit cache (* data present, permission miss *)
    | _ -> Cache.record_miss cache);
    let resume : Obj.t -> unit = Thread.Frame.stall_k c in
    let lat = write_miss t pid line in
    let result = excl_mutate c (owned_data t pid line) off in
    resume_app t line ~exclusive:true lat resume result

let write t a v c k =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setv3 c t;
    Thread.Frame.seti3 c a;
    Thread.Frame.seti1 c 1;
    Thread.Frame.seti2 c v;
    Thread.Frame.hold_then c t.cfg.hit_cost excl_step
  end
  else exclusive_update_cps t a (fun data off -> data.(off) <- v) c k

let rmw t a f c k =
  if Thread.Frame.on c then begin
    Thread.Frame.save_k c k;
    Thread.Frame.setv3 c t;
    Thread.Frame.seti3 c a;
    Thread.Frame.seti1 c 2;
    Thread.Frame.setv2 c f;
    Thread.Frame.hold_then c t.cfg.hit_cost excl_step
  end
  else
    exclusive_update_cps t a
      (fun data off ->
        let old = data.(off) in
        data.(off) <- f old;
        old)
      c k

let read_block t a n =
  if n < 0 then invalid_arg "Shmem.read_block: negative size";
  let result = Array.make (max n 1) 0 in
  let rec go i =
    if i >= n then Thread.return result
    else
      let* v = read t (a + i) in
      result.(i) <- v;
      go (i + 1)
  in
  go 0

(* Authoritative current copy of a line: the owner's cached data when the
   line is Owned, the home memory otherwise. *)
let current_copy t line =
  let info = info_exn t line in
  match info.dstate with Owned o -> owned_data t o line | Uncached | Shared_by _ -> info.mem

let peek t a = (current_copy t (line_of t a)).(offset_of t a)

let poke t a v =
  let line = line_of t a and off = offset_of t a in
  let copy = current_copy t line in
  copy.(off) <- v;
  (* Keep any clean Shared copies consistent (initialization happens
     before threads run, but tests may poke mid-run for fault injection). *)
  let info = info_exn t line in
  (match info.dstate with
  | Shared_by s ->
    Sharers.iter
      (fun sh ->
        match Cache.lookup t.caches.(sh) ~line with
        | Some (_, d) -> d.(off) <- v
        | None -> ())
      s
  | Uncached | Owned _ -> ())

let cache_of t p = t.caches.(p)

let hit_rate t = Cache.hit_rate ~stats:(stats t)

module For_testing = struct
  let force_second_owner t a ~pid =
    let line = line_of t a in
    let info = info_exn t line in
    ignore (Cache.insert t.caches.(pid) ~line ~state:Cache.Modified ~data:info.mem)
end
