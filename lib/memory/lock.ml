open Cm_engine
open Cm_machine
open Thread.Infix

type t = {
  mem : Shmem.t;
  word : Shmem.addr;
  base_backoff : int;
  max_backoff : int;
  mutable holder : int option;  (* maintained only under Check *)
}

let default_base_backoff = 64

let default_max_backoff = 4096

let create ?(base_backoff = default_base_backoff) ?(max_backoff = default_max_backoff) mem ~home
    =
  { mem; word = Shmem.alloc mem ~home ~words:1; base_backoff; max_backoff; holder = None }

let addr l = l.word

let acquire l =
  let rec attempt backoff =
    (* Test&set: 0 -> 1; the old value tells us whether we won. *)
    let* old = Shmem.rmw l.mem l.word (fun _ -> 1) in
    if old = 0 then
      if Check.enabled () then
        let* me = Thread.tid in
        l.holder <- Some me;
        Thread.return ()
      else Thread.return ()
    else spin backoff
  and spin backoff =
    (* Spin on a read (hits the local Shared copy until the holder's
       release invalidates it), with randomized exponential backoff. *)
    let* r = Thread.rng in
    let jitter = Rng.int r backoff in
    let* () = Thread.sleep (backoff + jitter) in
    let* v = Shmem.read l.mem l.word in
    if v = 0 then attempt l.base_backoff else spin (min (backoff * 2) l.max_backoff)
  in
  attempt l.base_backoff

let release l =
  if not (Check.enabled ()) then Shmem.write l.mem l.word 0
  else
    let* me = Thread.tid in
    (match l.holder with
    | Some h when h = me -> ()
    | Some h -> Check.failf "Lock: released by tid %d, but tid %d holds it" me h
    | None -> Check.failf "Lock: released by tid %d, but it is not held" me);
    l.holder <- None;
    (* Same coherence cost as the plain write: both are one exclusive
       ownership transfer of the lock word's line. *)
    let* old = Shmem.rmw l.mem l.word (fun _ -> 0) in
    Check.require (old = 1) "Lock: word read %d at release (expected 1)" old;
    Thread.return ()

let with_lock l body =
  let* () = acquire l in
  let* result = body () in
  let* () = release l in
  Thread.return result

let holder_free l = Shmem.peek l.mem l.word = 0
