(** An experiment as a schedulable plan.

    Every experiment used to be an opaque [run] procedure that
    interleaved simulation and printing.  A plan splits it into the two
    halves the parallel harness needs:

    - [jobs]: the sweep points — pure, independent, deterministic
      simulations, each a [unit -> Metrics.t] closure that builds its
      own machine and returns its measurements without printing;
    - [render]: the presentation — takes the results {e in job order}
      and prints the tables/series on the calling domain.

    [execute] runs the jobs (inline, or on a {!Cm_engine.Pool} when one
    is given) and then renders.  Because jobs never print and results
    are rendered in submission order, the output is byte-identical at
    any [-j].

    Experiments whose structure is not a metrics sweep (fig1's message
    counts, table5's single migration, the ablations) stay [Serial]:
    one opaque procedure run on the calling domain. *)

type job = unit -> Cm_workload.Metrics.t
(** One sweep point.  Must not print and must not touch process-global
    mutable state: it may run on a pool domain. *)

type t =
  | Sweep of { jobs : job list; render : Cm_workload.Metrics.t list -> unit }
  | Serial of (unit -> unit)

val sweep : jobs:job list -> render:(Cm_workload.Metrics.t list -> unit) -> t

val serial : (unit -> unit) -> t

val job_count : t -> int
(** Number of parallelizable sweep points ([0] for [Serial]). *)

val execute : ?pool:Cm_engine.Pool.t -> t -> unit
(** [execute ?pool plan] runs the plan's jobs — in order on the calling
    domain when [pool] is absent, fanned out over the pool's domains
    when present — and then renders the results in job order.  [Serial]
    plans ignore the pool. *)

val chunk : int -> 'a list -> 'a list list
(** [chunk n xs] splits [xs] into consecutive chunks of [n] (the last
    may be shorter); a helper for renders that fold a flat job list
    back into sweep axes. *)
