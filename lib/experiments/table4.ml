(* Table 4: B-tree bandwidth with a 10000-cycle think time. *)

let render ms =
  Report.print_header "Table 4: B-tree bandwidth, 10000-cycle think time";
  Report.print_table ~metric:"words/10cyc"
    (Btree_tables.rows ~paper:Btree_tables.paper_bandwidth_t4 ~metric:`Bandwidth
       (List.combine Btree_tables.think_schemes ms));
  Report.print_note
    "Paper shape: shared memory still uses several times the bandwidth of computation";
  Report.print_note "migration because it must keep caches coherent."

let plan ?(quick = false) () =
  Plan.sweep ~jobs:(Btree_tables.jobs ~quick ~think:10_000 Btree_tables.think_schemes) ~render

let run ?(quick = false) () = Plan.execute (plan ~quick ())
