(* Shared machinery for Tables 1-4: run the B-tree under a list of
   schemes and print measured throughput/bandwidth against the paper's
   published values. *)

let all_schemes =
  [
    Scheme.Sm;
    Scheme.Rpc { hw = false; repl = false };
    Scheme.Rpc { hw = true; repl = false };
    Scheme.Rpc { hw = false; repl = true };
    Scheme.Rpc { hw = true; repl = true };
    Scheme.Cp { hw = false; repl = false };
    Scheme.Cp { hw = true; repl = false };
    Scheme.Cp { hw = false; repl = true };
    Scheme.Cp { hw = true; repl = true };
  ]

let think_schemes =
  [ Scheme.Sm; Scheme.Cp { hw = false; repl = true }; Scheme.Cp { hw = true; repl = true } ]

(* Paper values, Table 1/2 (0-cycle think time). *)
let paper_throughput_t1 = function
  | Scheme.Sm -> Some 1.837
  | Scheme.Rpc { hw = false; repl = false } -> Some 0.3828
  | Scheme.Rpc { hw = true; repl = false } -> Some 0.5133
  | Scheme.Rpc { hw = false; repl = true } -> Some 0.6060
  | Scheme.Rpc { hw = true; repl = true } -> Some 0.7830
  | Scheme.Cp { hw = false; repl = false } -> Some 0.8018
  | Scheme.Cp { hw = true; repl = false } -> Some 0.9570
  | Scheme.Cp { hw = false; repl = true } -> Some 1.155
  | Scheme.Cp { hw = true; repl = true } -> Some 1.341

let paper_bandwidth_t2 = function
  | Scheme.Sm -> Some 75.
  | Scheme.Rpc { hw = false; repl = false } -> Some 7.3
  | Scheme.Rpc { hw = true; repl = false } -> Some 9.9
  | Scheme.Rpc { hw = false; repl = true } -> Some 7.0
  | Scheme.Rpc { hw = true; repl = true } -> Some 9.3
  | Scheme.Cp { hw = false; repl = false } -> Some 3.5
  | Scheme.Cp { hw = true; repl = false } -> Some 4.3
  | Scheme.Cp { hw = false; repl = true } -> Some 3.8
  | Scheme.Cp { hw = true; repl = true } -> Some 3.9

(* Paper values, Table 3/4 (10000-cycle think time). *)
let paper_throughput_t3 = function
  | Scheme.Sm -> Some 1.071
  | Scheme.Cp { hw = false; repl = true } -> Some 0.9816
  | Scheme.Cp { hw = true; repl = true } -> Some 1.053
  | Scheme.Rpc _ | Scheme.Cp _ -> None

let paper_bandwidth_t4 = function
  | Scheme.Sm -> Some 16.
  | Scheme.Cp { hw = false; repl = true } -> Some 2.5
  | Scheme.Cp { hw = true; repl = true } -> Some 2.7
  | Scheme.Rpc _ | Scheme.Cp _ -> None

let config ~quick ~think =
  let base = Btree_run.default in
  if quick then { base with Btree_run.think; horizon = 200_000; warmup = 20_000 }
  else { base with Btree_run.think; horizon = 800_000; warmup = 80_000 }

(* One job per scheme, in row order — submitted to the pool by the
   table plans rather than run inline. *)
let jobs ~quick ~think schemes =
  List.map (fun s () -> Btree_run.run s (config ~quick ~think)) schemes

let rows ~paper ~metric measurements =
  List.map
    (fun (s, m) ->
      {
        Report.label = Scheme.name s;
        paper = paper s;
        measured =
          (match metric with
          | `Throughput -> m.Cm_workload.Metrics.throughput
          | `Bandwidth -> m.Cm_workload.Metrics.bandwidth);
      })
    measurements
