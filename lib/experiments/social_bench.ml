(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
open Cm_engine
open Cm_machine
open Cm_apps

(* A million-user follower graph on 1024 processors (quick mode shrinks
   both): users are indices in the flat object space, adjacency is CSR.
   Walks chain accesses hop to hop — migration's best case — while
   friends-of-friends fans out from one user, which is RPC-friendly. *)
type size = { node_procs : int; requesters : int; users : int; horizon : int }

let size ~quick =
  if quick then { node_procs = 16; requesters = 8; users = 4_000; horizon = 120_000 }
  else { node_procs = 960; requesters = 64; users = 1_000_000; horizon = 400_000 }

let avg_degree = 8

let walk_steps = 8

type workload = Walk | Fof

let workload_name = function
  | Walk -> Printf.sprintf "%d-hop walks" walk_steps
  | Fof -> "friends-of-friends"

let accesses = [ Cm_core.Prelude.Rpc; Cm_core.Prelude.Migrate ]

let access_name = function Cm_core.Prelude.Rpc -> "rpc" | Cm_core.Prelude.Migrate -> "migrate"

(* Direct-style requester: the start user is drawn from the thread's
   stream, the traversal is a saturated application, and the
   result-dropping continuation is cached per requester (the driver
   passes the same [k] every iteration) — steady-state requests
   allocate nothing in the loop itself. *)
let request graph workload access _i =
  let drop = ref None in
  fun c k ->
    let dropk =
      match !drop with
      | Some (k0, f) when k0 == k -> f
      | _ ->
        let f (_ : int) = k () in
        drop := Some (k, f);
        f
    in
    let r = Thread.Frame.rng c in
    let u = Rng.int r (Social_graph.n_users graph) in
    match workload with
    | Walk -> Social_graph.walk graph ~access ~start:u ~steps:walk_steps c dropk
    | Fof -> Social_graph.friends_of_friends graph ~access u c dropk

let measure_sim_words ~quick ~fused workload access =
  let sz = size ~quick in
  let machine =
    Machine.create ~seed:42 ~n_procs:(sz.node_procs + sz.requesters) ~costs:Costs.software ()
  in
  let env = Sysenv.make machine in
  (* Built directly (not simulated): a million users register in real
     time, one flat-store index each. *)
  let graph =
    Social_graph.create env ~n:sz.users ~avg_degree ~fused
      ~node_procs:(Array.init sz.node_procs (fun i -> i))
      ~seed:7 ()
  in
  (* Minor words sampled around the simulation alone (graph construction
     excluded) — the [bench sites] A/B's per-op allocation probe. *)
  let words0 = Gc.minor_words () in
  let metrics =
    Cm_workload.Driver.run machine
      {
        Cm_workload.Driver.requesters = sz.requesters;
        first_proc = sz.node_procs;
        think = 0;
        warmup = sz.horizon / 5;
        horizon = sz.horizon;
      }
      (request graph workload access)
  in
  (machine, metrics, Gc.minor_words () -. words0)

let measure_with_machine ~quick ?(fused = true) workload access =
  let machine, metrics, _ = measure_sim_words ~quick ~fused workload access in
  (machine, metrics)

let measure ~quick workload access = snd (measure_with_machine ~quick workload access)

let workloads = [ Walk; Fof ]

let jobs ~quick =
  List.concat_map
    (fun workload -> List.map (fun access () -> measure ~quick workload access) accesses)
    workloads

let render ~quick results =
  let sz = size ~quick in
  Report.print_header "Extension: social-graph traversal at scale";
  Printf.printf "   %d users, avg degree %d, %d node procs, %d requesters\n" sz.users avg_degree
    sz.node_procs sz.requesters;
  List.iter2
    (fun workload ms ->
      Printf.printf "\n-- %s --\n" (workload_name workload);
      List.iter2
        (fun access m ->
          Printf.printf "   %-14s %8.3f ops/1000cyc  %8.2f words/10cyc  mean latency %6.0f\n"
            (access_name access) m.Cm_workload.Metrics.throughput
            m.Cm_workload.Metrics.bandwidth m.Cm_workload.Metrics.mean_latency)
        accesses ms)
    workloads
    (Plan.chunk (List.length accesses) results);
  Report.print_note
    "Walks chain remote accesses along friend edges, so migration's one message";
  Report.print_note
    "per hop beats RPC's round trips; friends-of-friends returns to the same";
  Report.print_note
    "requester between visits, which cancels migration's advantage — the paper's";
  Report.print_note "S1 claim (no mechanism wins everywhere) at graph scale."

let plan ?(quick = false) () = Plan.sweep ~jobs:(jobs ~quick) ~render:(render ~quick)

let run ?(quick = false) () = Plan.execute (plan ~quick ())
