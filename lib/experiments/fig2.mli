(** Figure 2: counting-network throughput vs number of requesters, for
    the paper's five schemes at both think times. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
