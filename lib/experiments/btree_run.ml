open Cm_engine
open Cm_machine
open Cm_apps
open Thread.Infix

type config = {
  requesters : int;
  node_procs : int;
  n_keys : int;
  fanout : int;
  fill : float;
  lookup_fraction : float;
  key_space : int;
  think : int;
  horizon : int;
  warmup : int;
  seed : int;
}

let default =
  {
    requesters = 16;
    node_procs = 48;
    n_keys = 10_000;
    fanout = 100;
    fill = 0.7;
    lookup_fraction = 0.5;
    key_space = 1_000_000;
    think = 0;
    horizon = 600_000;
    warmup = 50_000;
    seed = 42;
  }

let fanout10 = { default with fanout = 10; fill = 0.75 }

let preload_keys config =
  (* Distinct keys drawn deterministically from the key space. *)
  let rng = Rng.create ~seed:(config.seed + 7) in
  let seen = Hashtbl.create config.n_keys in
  let rec draw acc n =
    if n = 0 then acc
    else begin
      let k = Rng.int rng config.key_space in
      if Hashtbl.mem seen k then draw acc n
      else begin
        Hashtbl.add seen k ();
        draw (k :: acc) (n - 1)
      end
    end
  in
  draw [] config.n_keys

let run_with_machine scheme config =
  let machine =
    Machine.create ~seed:config.seed
      ?shards:(if Scheme.shardable scheme then None else Some 1)
      ~n_procs:(config.node_procs + config.requesters)
      ~costs:(Scheme.costs scheme) ()
  in
  let env = Sysenv.make machine in
  let tree =
    Btree.create env ~mode:(Scheme.btree_mode scheme) ~fanout:config.fanout ~fill:config.fill
      ~replicate_root:(Scheme.replicated scheme)
      ~placement_seed:(config.seed + 13)
      ~node_procs:(Array.init config.node_procs (fun i -> i))
      ~keys:(preload_keys config) ()
  in
  let request _i =
    let* r = Thread.rng in
    let key = Rng.int r config.key_space in
    if Rng.float r 1.0 < config.lookup_fraction then Thread.ignore_m (Btree.lookup tree key)
    else Thread.ignore_m (Btree.insert tree key)
  in
  let metrics =
    Cm_workload.Driver.run machine
      {
        Cm_workload.Driver.requesters = config.requesters;
        first_proc = config.node_procs;
        think = config.think;
        warmup = config.warmup;
        horizon = config.horizon;
      }
      request
  in
  (machine, metrics)

let run scheme config = snd (run_with_machine scheme config)
