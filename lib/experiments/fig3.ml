(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Figure 3: counting-network bandwidth (words sent / 10 cycles) vs the
   number of requesters, for RPC, shared memory, and computation
   migration, at both think times.  Structured as a Plan, like fig2. *)

let schemes =
  [
    Scheme.Rpc { hw = false; repl = false };
    Scheme.Sm;
    Scheme.Cp { hw = false; repl = false };
  ]

let requester_counts ~quick = if quick then [ 8; 32; 64 ] else [ 8; 16; 32; 48; 64 ]

let thinks = [ 0; 10_000 ]

let jobs ~quick =
  let horizon = if quick then 150_000 else 400_000 in
  List.concat_map
    (fun think ->
      List.concat_map
        (fun scheme ->
          List.map
            (fun requesters () ->
              Counting_run.run scheme
                { Counting_run.default with Counting_run.requesters; think; horizon })
            (requester_counts ~quick))
        schemes)
    thinks

let series ~quick results =
  List.map2
    (fun scheme ms ->
      (Scheme.name scheme, List.map (fun m -> m.Cm_workload.Metrics.bandwidth) ms))
    schemes
    (Plan.chunk (List.length (requester_counts ~quick)) results)

let render ~quick results =
  let xs = requester_counts ~quick in
  let per_think = List.length schemes * List.length xs in
  let think0, think10k =
    match Plan.chunk per_think results with
    | [ a; b ] -> (a, b)
    | _ -> invalid_arg "fig3: bad result shape"
  in
  Report.print_header "Figure 3: counting-network bandwidth vs number of requesters";
  Printf.printf "\n-- think time 0 cycles --\n";
  Report.print_series ~x_label:"total processes" ~metric:"words sent/10 cycles" ~xs
    (series ~quick think0);
  Printf.printf "\n-- think time 10000 cycles --\n";
  Report.print_series ~x_label:"total processes" ~metric:"words sent/10 cycles" ~xs
    (series ~quick think10k);
  Report.print_note
    "Paper shape: computation migration always needs the least bandwidth (about half";
  Report.print_note
    "of RPC's); shared memory's coherence traffic dominates under high contention."

let plan ?(quick = false) () = Plan.sweep ~jobs:(jobs ~quick) ~render:(render ~quick)

let run ?(quick = false) () = Plan.execute (plan ~quick ())
