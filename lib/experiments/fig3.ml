(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Figure 3: counting-network bandwidth (words sent / 10 cycles) vs the
   number of requesters, for RPC, shared memory, and computation
   migration, at both think times. *)

let schemes =
  [
    Scheme.Rpc { hw = false; repl = false };
    Scheme.Sm;
    Scheme.Cp { hw = false; repl = false };
  ]

let requester_counts ~quick = if quick then [ 8; 32; 64 ] else [ 8; 16; 32; 48; 64 ]

let sweep ~quick ~think =
  let horizon = if quick then 150_000 else 400_000 in
  List.map
    (fun scheme ->
      let ys =
        List.map
          (fun requesters ->
            let m =
              Counting_run.run scheme
                { Counting_run.default with Counting_run.requesters; think; horizon }
            in
            m.Cm_workload.Metrics.bandwidth)
          (requester_counts ~quick)
      in
      (Scheme.name scheme, ys))
    schemes

let run ?(quick = false) () =
  let xs = requester_counts ~quick in
  Report.print_header "Figure 3: counting-network bandwidth vs number of requesters";
  Printf.printf "\n-- think time 0 cycles --\n";
  Report.print_series ~x_label:"total processes" ~metric:"words sent/10 cycles" ~xs
    (sweep ~quick ~think:0);
  Printf.printf "\n-- think time 10000 cycles --\n";
  Report.print_series ~x_label:"total processes" ~metric:"words sent/10 cycles" ~xs
    (sweep ~quick ~think:10_000);
  Report.print_note
    "Paper shape: computation migration always needs the least bandwidth (about half";
  Report.print_note
    "of RPC's); shared memory's coherence traffic dominates under high contention."
