(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
open Cm_machine
open Cm_runtime
open Thread.Infix

(* Object state is [obj_words] words on the wire — larger than an
   activation (8 words), as the paper assumes when it argues that moving
   data can be the more expensive direction. *)
let obj_words = 24

type policy = Cp | Obj_pull | Stationary

let policy_name = function
  | Cp -> "computation migration"
  | Obj_pull -> "object migration (pull)"
  | Stationary -> "stationary calls (RPC)"

let report label machine finished =
  Printf.printf "   %-26s messages=%-4d words=%-5d cycles=%d\n" label
    (Network.total_messages machine.Machine.net)
    (Network.total_words machine.Machine.net)
    finished

let with_run ~n_procs f =
  (* Migrating objects are machine-global state (see Objmig.create). *)
  let machine = Machine.create ~seed:42 ~shards:1 ~n_procs ~costs:Costs.software () in
  let rt = Runtime.create machine in
  let space = Objspace.create machine in
  let om = Objmig.create rt space ~words_of:(fun (_ : int ref) -> obj_words) in
  let finished = ref 0 in
  Machine.spawn machine ~on:0
    (let* () = f machine rt space om in
     finished := Machine.now machine;
     Thread.return ());
  Machine.run machine;
  (machine, !finished)

(* One access to object [i] under the chosen policy. *)
let access rt space om policy i body =
  match policy with
  | Cp ->
    Runtime.call rt ~access:Runtime.Migrate ~home:(Objspace.home space i) ~args_words:8
      ~result_words:2 (body (Objspace.state space i))
  | Obj_pull -> Objmig.call_pull om i ~result_words:2 body
  | Stationary -> Objmig.call om i ~args_words:8 ~result_words:2 body

(* Scenario A: pointer chase across m objects, n accesses each. *)
let chase policy =
  let m = 8 and n = 3 in
  with_run ~n_procs:(m + 1) (fun _machine rt space om ->
      let ids = Array.init m (fun j -> Objspace.register space ~home:(j + 1) (ref (10 * j))) in
      Runtime.scope rt ~result_words:2
        (Thread.iter_list
           (fun j ->
             Thread.repeat n (fun _ ->
                 Thread.ignore_m
                   (access rt space om policy ids.(j) (fun c ->
                        let* () = Thread.compute 30 in
                        Thread.return !c))))
           (List.init m (fun j -> j))))

(* Scenario B: one thread repeatedly using one remote object. *)
let private_hot policy =
  with_run ~n_procs:8 (fun _machine rt space om ->
      let i = Objspace.register space ~home:5 (ref 0) in
      Runtime.scope rt ~result_words:2
        (Thread.repeat 20 (fun _ ->
             Thread.ignore_m
               (access rt space om policy i (fun c ->
                    incr c;
                    Thread.compute 30)))))

(* Scenario C: a write-shared object accessed by four strictly
   alternating threads. *)
let write_shared policy =
  let threads = 4 and rounds = 6 in
  let machine = Machine.create ~seed:42 ~shards:1 ~n_procs:8 ~costs:Costs.software () in
  let rt = Runtime.create machine in
  let space = Objspace.create machine in
  let om = Objmig.create rt space ~words_of:(fun (_ : int ref) -> obj_words) in
  let i = Objspace.register space ~home:0 (ref 0) in
  let turn = ref 0 in
  for th = 0 to threads - 1 do
    Machine.spawn machine ~on:(th + 1)
      (Thread.repeat rounds (fun _ ->
           let* () = Thread.while_ (fun () -> !turn mod threads <> th) (Thread.sleep 40) in
           let* () =
             Runtime.scope rt ~result_words:2
               (Thread.ignore_m
                  (access rt space om policy i (fun c ->
                       incr c;
                       Thread.compute 30)))
           in
           incr turn;
           Thread.return ()))
  done;
  Machine.run machine;
  (machine, Machine.now machine)

let run ?quick:_ () =
  Report.print_header
    "Extension: object migration (Emerald-style) vs computation migration (S4's missing comparison)";
  Printf.printf "\n-- A: pointer chase, 3 accesses to each of 8 remote objects --\n";
  List.iter
    (fun p ->
      let machine, t = chase p in
      report (policy_name p) machine t)
    [ Cp; Obj_pull; Stationary ];
  Printf.printf "\n-- B: one thread, 20 accesses to one remote object --\n";
  List.iter
    (fun p ->
      let machine, t = private_hot p in
      report (policy_name p) machine t)
    [ Cp; Obj_pull; Stationary ];
  Printf.printf "\n-- C: write-shared object, 4 alternating writers --\n";
  List.iter
    (fun p ->
      let machine, t = write_shared p in
      report (policy_name p) machine t)
    [ Cp; Obj_pull; Stationary ];
  Report.print_note
    "A and B: moving something once and staying is best - the activation (A) or the";
  Report.print_note
    "object (B); both beat stationary RPC.  C: the write-shared case - the object";
  Report.print_note
    "ping-pongs with its full state while computation migration ships only small";
  Report.print_note "activations, the paper's S2.2 argument, now measured.";
  Report.print_note
    "(Counting-network/B-tree runs under full object migration are omitted: balancer";
  Report.print_note
    "and node objects are write-shared by many threads, which scenario C covers.)"

let plan ?(quick = false) () = Plan.serial (fun () -> run ~quick ())
