(** Figure 3: counting-network bandwidth (words/10 cycles) vs number of
    requesters, for RPC, shared memory and computation migration. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
