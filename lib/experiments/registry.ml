type entry = { id : string; title : string; plan : ?quick:bool -> unit -> Plan.t }

let all =
  [
    { id = "fig1"; title = "Figure 1: message-count model"; plan = Fig1.plan };
    { id = "fig2"; title = "Figure 2: counting-network throughput"; plan = Fig2.plan };
    { id = "fig3"; title = "Figure 3: counting-network bandwidth"; plan = Fig3.plan };
    { id = "table1"; title = "Table 1: B-tree throughput (think 0)"; plan = Table1.plan };
    { id = "table2"; title = "Table 2: B-tree bandwidth (think 0)"; plan = Table2.plan };
    { id = "table3"; title = "Table 3: B-tree throughput (think 10000)"; plan = Table3.plan };
    { id = "table4"; title = "Table 4: B-tree bandwidth (think 10000)"; plan = Table4.plan };
    { id = "table5"; title = "Table 5: migration cost breakdown"; plan = Table5.plan };
    { id = "fanout10"; title = "S4.2: fanout-10 B-tree"; plan = Fanout10.plan };
    { id = "ablations"; title = "Ablations of the design choices"; plan = Ablations.plan };
    { id = "dht"; title = "Extension: hash table across mechanisms"; plan = Dht_bench.plan };
    {
      id = "objmig";
      title = "Extension: object migration vs computation migration";
      plan = Objmig_bench.plan;
    };
    {
      id = "dht_zipf";
      title = "Extension: Zipf-skewed DHT traffic (hot keys at scale)";
      plan = Dht_zipf.plan;
    };
    {
      id = "social_graph";
      title = "Extension: social-graph traversal at scale";
      plan = Social_bench.plan;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run ?quick ?pool entry = Plan.execute ?pool (entry.plan ?quick ())

let run_all ?quick ?pool () = List.iter (fun e -> run ?quick ?pool e) all
