(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Figure 2: counting-network throughput (requests / 1000 cycles) as a
   function of the number of requester processes (8..64), under both
   think times (0 and 10 000 cycles), for the five schemes the paper
   plots: SM, CP w/HW, CP, RPC w/HW, RPC.

   The sweep is a Plan: every (scheme, requesters, think) cell is an
   independent job and all printing happens in [render], so the cells
   can run on pool domains without perturbing the output. *)

let schemes =
  [
    Scheme.Sm;
    Scheme.Cp { hw = true; repl = false };
    Scheme.Cp { hw = false; repl = false };
    Scheme.Rpc { hw = true; repl = false };
    Scheme.Rpc { hw = false; repl = false };
  ]

let requester_counts ~quick = if quick then [ 8; 32; 64 ] else [ 8; 16; 32; 48; 64 ]

let thinks = [ 0; 10_000 ]

(* Jobs in think-major, then scheme-major, then requester order — the
   order [render] prints. *)
let jobs ~quick =
  let horizon = if quick then 150_000 else 400_000 in
  List.concat_map
    (fun think ->
      List.concat_map
        (fun scheme ->
          List.map
            (fun requesters () ->
              Counting_run.run scheme
                { Counting_run.default with Counting_run.requesters; think; horizon })
            (requester_counts ~quick))
        schemes)
    thinks

let series ~quick results =
  List.map2
    (fun scheme ms ->
      (Scheme.name scheme, List.map (fun m -> m.Cm_workload.Metrics.throughput) ms))
    schemes
    (Plan.chunk (List.length (requester_counts ~quick)) results)

let render ~quick results =
  let xs = requester_counts ~quick in
  let per_think = List.length schemes * List.length xs in
  let by_think = Plan.chunk per_think results in
  let think0, think10k =
    match by_think with [ a; b ] -> (a, b) | _ -> invalid_arg "fig2: bad result shape"
  in
  Report.print_header "Figure 2: counting-network throughput vs number of requesters";
  Printf.printf "\n-- think time 0 cycles (high contention) --\n";
  Report.print_series ~x_label:"total processes" ~metric:"requests/1000 cycles" ~xs
    (series ~quick think0);
  Report.print_note
    "Paper shape: SM and CP w/HW on top and close together, then CP, RPC w/HW, RPC.";
  Printf.printf "\n-- think time 10000 cycles (lower contention) --\n";
  Report.print_series ~x_label:"total processes" ~metric:"requests/1000 cycles" ~xs
    (series ~quick think10k);
  Report.print_note
    "Paper shape: curves rise with offered load; SM slightly ahead of CP w/HW; RPC lowest."

let plan ?(quick = false) () = Plan.sweep ~jobs:(jobs ~quick) ~render:(render ~quick)

let run ?(quick = false) () = Plan.execute (plan ~quick ())
