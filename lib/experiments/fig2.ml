(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Figure 2: counting-network throughput (requests / 1000 cycles) as a
   function of the number of requester processes (8..64), under both
   think times (0 and 10 000 cycles), for the five schemes the paper
   plots: SM, CP w/HW, CP, RPC w/HW, RPC. *)

let schemes =
  [
    Scheme.Sm;
    Scheme.Cp { hw = true; repl = false };
    Scheme.Cp { hw = false; repl = false };
    Scheme.Rpc { hw = true; repl = false };
    Scheme.Rpc { hw = false; repl = false };
  ]

let requester_counts ~quick = if quick then [ 8; 32; 64 ] else [ 8; 16; 32; 48; 64 ]

let sweep ~quick ~think =
  let horizon = if quick then 150_000 else 400_000 in
  let xs = requester_counts ~quick in
  List.map
    (fun scheme ->
      let ys =
        List.map
          (fun requesters ->
            let m =
              Counting_run.run scheme
                { Counting_run.default with Counting_run.requesters; think; horizon }
            in
            m.Cm_workload.Metrics.throughput)
          xs
      in
      (Scheme.name scheme, ys))
    schemes

let run ?(quick = false) () =
  let xs = requester_counts ~quick in
  Report.print_header "Figure 2: counting-network throughput vs number of requesters";
  Printf.printf "\n-- think time 0 cycles (high contention) --\n";
  Report.print_series ~x_label:"total processes" ~metric:"requests/1000 cycles" ~xs
    (sweep ~quick ~think:0);
  Report.print_note
    "Paper shape: SM and CP w/HW on top and close together, then CP, RPC w/HW, RPC.";
  Printf.printf "\n-- think time 10000 cycles (lower contention) --\n";
  Report.print_series ~x_label:"total processes" ~metric:"requests/1000 cycles" ~xs
    (sweep ~quick ~think:10_000);
  Report.print_note
    "Paper shape: curves rise with offered load; SM slightly ahead of CP w/HW; RPC lowest."
