(** Zipf-skewed DHT traffic — the hot-key scenario at production scale.

    Sweeps mechanism (RPC / migration / adaptive) against key-popularity
    skew on a table preloaded with 10^6 keys across 1024 simulated
    processors (quick mode shrinks every axis).  Entries live in the
    flat int-pair buckets, so the million-entry table is one array per
    bucket and the preload bypasses simulated time. *)

val measure : quick:bool -> Cm_apps.Dht.mode -> float -> Cm_workload.Metrics.t
(** [measure ~quick mode skew] runs one sweep point. *)

val measure_with_machine :
  quick:bool ->
  ?fused:bool ->
  Cm_apps.Dht.mode ->
  float ->
  Cm_machine.Machine.t * Cm_workload.Metrics.t
(** [measure] exposing the machine — the bench harness's digest and
    event-count probes.  [fused] (default [true]) selects the table's
    method-site path vs the generic [scope]/[call] composition; the
    [bench sites] A/B flips it and cross-checks digests. *)

val measure_sim_words :
  quick:bool ->
  fused:bool ->
  Cm_apps.Dht.mode ->
  float ->
  Cm_machine.Machine.t * Cm_workload.Metrics.t * float
(** [measure_with_machine] additionally reporting the minor words
    allocated across the simulation itself (table construction and
    preload excluded) — the [bench sites] A/B divides this by
    [Metrics.ops] for its steady-state words-per-op figures. *)

val plan : ?quick:bool -> unit -> Plan.t

val run : ?quick:bool -> unit -> unit
