(** Zipf-skewed DHT traffic — the hot-key scenario at production scale.

    Sweeps mechanism (RPC / migration / adaptive) against key-popularity
    skew on a table preloaded with 10^6 keys across 1024 simulated
    processors (quick mode shrinks every axis).  Entries live in the
    flat int-pair buckets, so the million-entry table is one array per
    bucket and the preload bypasses simulated time. *)

val measure : quick:bool -> Cm_apps.Dht.mode -> float -> Cm_workload.Metrics.t
(** [measure ~quick mode skew] runs one sweep point. *)

val measure_with_machine :
  quick:bool -> Cm_apps.Dht.mode -> float -> Cm_machine.Machine.t * Cm_workload.Metrics.t
(** [measure] exposing the machine — the bench harness's digest and
    event-count probes. *)

val plan : ?quick:bool -> unit -> Plan.t

val run : ?quick:bool -> unit -> unit
