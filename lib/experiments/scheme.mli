(** The remote-access schemes compared in the paper's evaluation.

    A scheme is a mechanism plus the optional hardware-support estimate
    ("w/HW": register-mapped network interface and hardware global-object
    identifier translation) and, for the B-tree, optional software root
    replication ("w/repl."). *)

type t =
  | Sm  (** cache-coherent shared memory (data migration) *)
  | Rpc of { hw : bool; repl : bool }
  | Cp of { hw : bool; repl : bool }  (** computation migration *)

val name : t -> string
(** The paper's row label, e.g. ["SM"], ["RPC w/HW"],
    ["CP w/repl. & HW"]. *)

val costs : t -> Cm_machine.Costs.t
(** Cost model for the scheme ([hardware] when [hw] is set). *)

val btree_mode : t -> Cm_apps.Btree.mode
(** The B-tree execution mode for the scheme. *)

val counting_mode : t -> Cm_apps.Counting_network.mode
(** The counting-network execution mode (replication is meaningless
    there — the paper notes balancers are write-shared). *)

val replicated : t -> bool
(** Whether the scheme replicates the B-tree root in software. *)

val shardable : t -> bool
(** Whether machines running this scheme may be shard-partitioned
    ([Sm] may not — coherent shared memory refuses sharded machines).
    Runners pin [~shards:1] when false so a global [CM_SHARDS] default
    leaves shared-memory cells untouched. *)

val of_string : string -> (t, string) result
(** Parse a CLI label like ["sm"], ["rpc"], ["cp+hw"], ["cp+repl+hw"]. *)
