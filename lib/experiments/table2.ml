(* Table 2: B-tree network bandwidth (words / 10 cycles), zero think
   time, all nine schemes. *)

let render ms =
  Report.print_header "Table 2: B-tree bandwidth, 0-cycle think time";
  Report.print_table ~metric:"words/10cyc"
    (Btree_tables.rows ~paper:Btree_tables.paper_bandwidth_t2 ~metric:`Bandwidth
       (List.combine Btree_tables.all_schemes ms));
  Report.print_note
    "Paper shape: shared memory consumes an order of magnitude more network bandwidth";
  Report.print_note "than the messaging schemes; computation migration needs the least."

let plan ?(quick = false) () =
  Plan.sweep ~jobs:(Btree_tables.jobs ~quick ~think:0 Btree_tables.all_schemes) ~render

let run ?(quick = false) () = Plan.execute (plan ~quick ())
