(** Table 5: the cycle-cost breakdown of one activation migration.

    The cost model's constants are calibrated against this table; the
    experiment additionally measures a real migration end-to-end in the
    assembled runtime and checks it equals the model's total. *)

val measure_one_migration : unit -> int
(** End-to-end cycles for one 32-byte activation migration over two mesh
    hops, including the 150-cycle method body. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
