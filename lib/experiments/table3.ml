(* Table 3: B-tree throughput with a 10000-cycle think time (light
   contention on the root): SM vs CP w/repl. (and w/HW). *)

let render ms =
  Report.print_header "Table 3: B-tree throughput, 10000-cycle think time";
  Report.print_table ~metric:"ops/1000cyc"
    (Btree_tables.rows ~paper:Btree_tables.paper_throughput_t3 ~metric:`Throughput
       (List.combine Btree_tables.think_schemes ms));
  Report.print_note
    "Paper shape: with light root contention, CP w/repl.&HW and shared memory have";
  Report.print_note "almost identical throughput."

let plan ?(quick = false) () =
  Plan.sweep ~jobs:(Btree_tables.jobs ~quick ~think:10_000 Btree_tables.think_schemes) ~render

let run ?(quick = false) () = Plan.execute (plan ~quick ())
