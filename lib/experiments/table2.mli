(** Table 2 of the paper's B-tree evaluation (see {!Btree_tables}). *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
