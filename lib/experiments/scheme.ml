open Cm_machine

type t = Sm | Rpc of { hw : bool; repl : bool } | Cp of { hw : bool; repl : bool }

let name = function
  | Sm -> "SM"
  | Rpc { hw = false; repl = false } -> "RPC"
  | Rpc { hw = true; repl = false } -> "RPC w/HW"
  | Rpc { hw = false; repl = true } -> "RPC w/repl."
  | Rpc { hw = true; repl = true } -> "RPC w/repl. & HW"
  | Cp { hw = false; repl = false } -> "CP"
  | Cp { hw = true; repl = false } -> "CP w/HW"
  | Cp { hw = false; repl = true } -> "CP w/repl."
  | Cp { hw = true; repl = true } -> "CP w/repl. & HW"

let costs = function
  | Sm -> Costs.software
  | Rpc { hw; _ } | Cp { hw; _ } -> if hw then Costs.hardware else Costs.software

let btree_mode = function
  | Sm -> Cm_apps.Btree.Shared_memory
  | Rpc _ -> Cm_apps.Btree.Messaging Cm_core.Prelude.Rpc
  | Cp _ -> Cm_apps.Btree.Messaging Cm_core.Prelude.Migrate

let counting_mode = function
  | Sm -> Cm_apps.Counting_network.Shared_memory
  | Rpc _ -> Cm_apps.Counting_network.Messaging Cm_core.Prelude.Rpc
  | Cp _ -> Cm_apps.Counting_network.Messaging Cm_core.Prelude.Migrate

let replicated = function Sm -> false | Rpc { repl; _ } | Cp { repl; _ } -> repl

(* Shared memory walks a machine-global directory (Shmem refuses sharded
   machines); the message-passing schemes only touch per-processor state
   between transport messages, which is exactly what the conservative
   windows preserve. *)
let shardable = function Sm -> false | Rpc _ | Cp _ -> true

let of_string s =
  match String.lowercase_ascii s with
  | "sm" -> Ok Sm
  | "rpc" -> Ok (Rpc { hw = false; repl = false })
  | "rpc+hw" -> Ok (Rpc { hw = true; repl = false })
  | "rpc+repl" -> Ok (Rpc { hw = false; repl = true })
  | "rpc+repl+hw" | "rpc+hw+repl" -> Ok (Rpc { hw = true; repl = true })
  | "cp" -> Ok (Cp { hw = false; repl = false })
  | "cp+hw" -> Ok (Cp { hw = true; repl = false })
  | "cp+repl" -> Ok (Cp { hw = false; repl = true })
  | "cp+repl+hw" | "cp+hw+repl" -> Ok (Cp { hw = true; repl = true })
  | other -> Error (Printf.sprintf "unknown scheme %S" other)
