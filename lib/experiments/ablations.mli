(** Ablations of the design choices DESIGN.md §7 calls out: short-circuit
    returns, conditional migration, root replication, the two
    hardware-support components, shared-memory synchronization choices,
    migration granularity, partial activation migration, and the
    link-contention network model. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
