(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Table 5: the cycle-cost breakdown of migrating one activation (the
   counting network's 32-byte activation) from one processor to another.

   The cost model's per-category constants are calibrated against this
   table, so the model rows reproduce it by construction; what this
   experiment adds is a measurement: it performs one real migration in
   the assembled runtime and checks that the end-to-end latency equals
   the sum of the categories — i.e. that the runtime actually charges
   what the model says, with no hidden or double-counted cycles. *)

open Cm_machine
open Cm_runtime
open Cm_machine.Thread.Infix

let paper_cycles = function
  | "Total time" -> Some 651.
  | "User code" -> Some 150.
  | "Network transit" -> Some 17.
  | "Message overhead total" -> Some 484.
  | "Receiver total" -> Some 341.
  | "Copy packet (32 bytes)" -> Some 76.
  | "Thread creation" -> Some 66.
  | "Procedure linkage (recv)" -> Some 66.
  | "Unmarshaling" -> Some 51.
  | "Object ID translation" -> Some 36.
  | "Scheduler" -> Some 36.
  | "Forwarding check" -> Some 23.
  | "Allocate packet (recv)" -> Some 16.
  | "Sender total" -> Some 143.
  | "Procedure linkage (send)" -> Some 44.
  | "Allocate packet (send)" -> Some 35.
  | "Message send" -> Some 23.
  | "Marshaling" -> Some 22.
  | _ -> None

(* One real migration between two processors two mesh hops apart,
   timed end to end (from issuing the annotated call to the completion
   of the 150-cycle method at the destination). *)
let measure_one_migration () =
  let machine = Machine.create ~seed:1 ~n_procs:9 ~costs:Costs.software () in
  let rt = Runtime.create machine in
  let started = ref 0 and finished = ref 0 in
  Machine.spawn machine ~on:0
    (let* () = Thread.compute 1 in
     started := Machine.now machine;
     let* () =
       Runtime.call rt ~access:Runtime.Migrate ~home:2 (* two hops on the 3x3 mesh *)
         ~args_words:8 ~result_words:2 (Thread.compute 150)
     in
     finished := Machine.now machine;
     Thread.return ());
  Machine.run machine;
  !finished - !started

let run ?quick:_ () =
  Report.print_header "Table 5: cost breakdown of one activation migration (32-byte payload)";
  let model = Costs.breakdown Costs.software ~words:8 ~hops:2 ~user_code:150 in
  let total = List.assoc "Total time" model in
  Printf.printf "%-28s %8s %8s  %8s %8s\n" "category" "paper" "model" "paper %" "model %";
  List.iter
    (fun (label, cycles) ->
      let pct = 100. *. float_of_int cycles /. float_of_int total in
      match paper_cycles label with
      | Some p ->
        Printf.printf "%-28s %8.0f %8d  %7.0f%% %7.1f%%\n" label p cycles (100. *. p /. 651.) pct
      | None -> Printf.printf "%-28s %8s %8d  %8s %7.1f%%\n" label "-" cycles "-" pct)
    model;
  let measured = measure_one_migration () in
  Printf.printf "\nEnd-to-end migration measured in the simulator: %d cycles (model total %d)\n"
    measured total;
  Report.print_note
    "The paper's sub-rows do not sum exactly to its subtotals (it calls the table";
  Report.print_note
    "'fairly accurate'); our categories sum exactly, so totals differ by a few percent.";
  if measured <> total then
    Report.print_note
      (Printf.sprintf "NOTE: measured differs from model by %d cycles" (measured - total))

let plan ?(quick = false) () = Plan.serial (fun () -> run ~quick ())
