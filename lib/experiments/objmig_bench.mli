(** Extension experiment: the comparison the paper could not run.

    Section 4 of the paper: "We would like to compare our results to
    object migration, such as the mechanism in Emerald, but our group
    has not finished implementing object migration in Prelude yet."
    {!Cm_runtime.Objmig} finishes it; this experiment runs the
    comparison on three microworkloads — a pointer chase, a private hot
    object, and a write-shared object — reporting messages, words and
    completion time for computation migration, Emerald-style
    move-on-access object migration, and stationary (RPC-style) mobile
    calls. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
