(** Social-graph traversal at scale — chained vs. fan-out accesses over
    a Zipf-degree follower graph of 10^6 users on 1024 simulated
    processors (quick mode shrinks both).  See {!Cm_apps.Social_graph}. *)

type workload = Walk | Fof

val measure : quick:bool -> workload -> Cm_core.Prelude.access -> Cm_workload.Metrics.t
(** [measure ~quick workload access] runs one sweep point. *)

val measure_with_machine :
  quick:bool ->
  ?fused:bool ->
  workload ->
  Cm_core.Prelude.access ->
  Cm_machine.Machine.t * Cm_workload.Metrics.t
(** [measure] exposing the machine — the bench harness's digest and
    event-count probes.  [fused] (default [true]) selects the graph's
    method-site visit path vs the generic [scope]/[call] composition;
    the [bench sites] A/B flips it and cross-checks digests. *)

val measure_sim_words :
  quick:bool ->
  fused:bool ->
  workload ->
  Cm_core.Prelude.access ->
  Cm_machine.Machine.t * Cm_workload.Metrics.t * float
(** [measure_with_machine] additionally reporting the minor words
    allocated across the simulation itself (graph construction
    excluded) — the [bench sites] A/B divides this by [Metrics.ops]
    for its steady-state words-per-op figures. *)

val plan : ?quick:bool -> unit -> Plan.t

val run : ?quick:bool -> unit -> unit
