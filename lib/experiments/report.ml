(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
type row = { label : string; paper : float option; measured : float }

let print_header title =
  Printf.printf "\n=== %s ===\n" title

let print_table ~metric rows =
  let width = List.fold_left (fun acc r -> max acc (String.length r.label)) 12 rows in
  Printf.printf "%-*s  %12s  %12s  %8s\n" width "scheme" ("paper " ^ metric) "measured" "ratio";
  List.iter
    (fun r ->
      match r.paper with
      | Some p ->
        Printf.printf "%-*s  %12.4f  %12.4f  %8.2f\n" width r.label p r.measured
          (if p = 0. then nan else r.measured /. p)
      | None -> Printf.printf "%-*s  %12s  %12.4f  %8s\n" width r.label "-" r.measured "-")
    rows

let print_series ~x_label ~metric ~xs curves =
  let width = List.fold_left (fun acc (name, _) -> max acc (String.length name)) 12 curves in
  Printf.printf "%s (%s):\n%-*s" metric x_label width "";
  List.iter (fun x -> Printf.printf "  %8d" x) xs;
  print_newline ();
  List.iter
    (fun (name, ys) ->
      Printf.printf "%-*s" width name;
      List.iter (fun y -> Printf.printf "  %8.3f" y) ys;
      print_newline ())
    curves

let print_note s = Printf.printf "  %s\n" s
