(** §4.2's contention-relief experiment: the fanout-10 B-tree, where
    smaller nodes relieve the below-root bottleneck and computation
    migration with a replicated root closes to within ~20% of shared
    memory. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
