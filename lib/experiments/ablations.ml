(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Ablations of the design choices DESIGN.md calls out.  Each one turns
   a single mechanism knob and shows its contribution:

   1. short-circuit returns (one result message per activation) vs
      returning through every intermediate hop;
   2. the conditional locality check vs always-migrate (the
      Rogers/Reppy/Hendren policy the paper's §5 contrasts itself with);
   3. software root replication's effect on the root processor's load
      (resource contention moving below the root, §4.2);
   4. the two hardware-support components, separately and together;
   5. shared-memory balancer synchronization (lock backoff, atomic
      fetch-and-toggle);
   6. B-tree shared-memory read concurrency control (reader-writer locks
      vs lock-free seqlock reads). *)

open Cm_engine
open Cm_machine
open Cm_runtime
open Cm_apps
open Thread.Infix

let fresh_machine ?(n = 16) ?(costs = Costs.software) () =
  Machine.create ~seed:17 ~n_procs:n ~costs ()

let run_to_completion machine body =
  Machine.spawn machine ~on:0 body;
  Machine.run machine

(* -- 1. short-circuit returns ------------------------------------- *)

let chain_hops = 8

let short_circuit_ablation () =
  let chain scoped_per_hop =
    let machine = fresh_machine ~n:(chain_hops + 1) () in
    let rt = Runtime.create machine in
    let hop i =
      Runtime.call rt ~access:Runtime.Migrate ~home:(i + 1) ~args_words:8 ~result_words:2
        (Thread.compute 50)
    in
    let body =
      if scoped_per_hop then
        (* Every hop is its own activation: each one sends its result
           back to processor 0 before the next hop starts. *)
        Thread.repeat chain_hops (fun i -> Runtime.scope rt ~result_words:2 (hop i))
      else
        (* One activation hops down the whole chain; a single result
           message returns at the end. *)
        Runtime.scope rt ~result_words:2 (Thread.repeat chain_hops hop)
    in
    let finished = ref 0 in
    run_to_completion machine
      (let* () = body in
       finished := Machine.now machine;
       Thread.return ());
    (Network.total_messages machine.Machine.net, !finished)
  in
  let msgs_sc, cycles_sc = chain false in
  let msgs_rt, cycles_rt = chain true in
  Printf.printf "1. Short-circuit returns over a %d-hop chain:\n" chain_hops;
  Printf.printf "   one activation, short-circuited:   %3d messages, %6d cycles\n" msgs_sc
    cycles_sc;
  Printf.printf "   per-hop activations, return home:  %3d messages, %6d cycles\n" msgs_rt
    cycles_rt

(* -- 2. conditional migration vs always-migrate -------------------- *)

let conditional_ablation () =
  let n = 6 and m = 5 in
  (* n accesses to each of m items; under the annotation only the first
     access per item migrates, under always-migrate every access sends a
     (possibly loopback) migration message. *)
  let count ~always =
    let machine = fresh_machine ~n:(m + 1) () in
    let rt = Runtime.create machine in
    run_to_completion machine
      (Runtime.scope rt ~result_words:2
         (Thread.iter_list
            (fun item ->
              Thread.repeat n (fun _ ->
                  let* p = Thread.proc in
                  if always && Processor.id p = item then
                    let* () = Thread.compute Costs.software.Costs.forwarding_check in
                    let* () =
                      Thread.travel ~net:machine.Machine.net ~dst:(Machine.proc machine item)
                        ~words:8 ~kind:"migrate"
                        ~recv_work:(Costs.recv_pipeline Costs.software ~words:8 ~new_thread:true)
                    in
                    Thread.compute 30
                  else
                    Runtime.call rt ~access:Runtime.Migrate ~home:item ~args_words:8
                      ~result_words:2 (Thread.compute 30)))
            (List.init m (fun i -> i + 1))));
    Network.total_messages machine.Machine.net
  in
  Printf.printf "\n2. Conditional migration (%d accesses to each of %d items):\n" n m;
  Printf.printf "   annotation (migrate only when remote): %3d messages (model m+1 = %d)\n"
    (count ~always:false) (m + 1);
  Printf.printf "   always-migrate (RRH92-style):          %3d messages (model nm+1 = %d)\n"
    (count ~always:true)
    ((n * m) + 1)

(* -- 3. replication and the root processor ------------------------- *)

let replication_ablation () =
  let run replicate_root =
    let node_procs = 12 and requesters = 8 in
    let machine = fresh_machine ~n:(node_procs + requesters) () in
    let env = Sysenv.make machine in
    let tree =
      Btree.create env
        ~mode:(Btree.Messaging Cm_core.Prelude.Migrate)
        ~fanout:16 ~replicate_root
        ~node_procs:(Array.init node_procs (fun i -> i))
        ~keys:(List.init 1500 (fun i -> i * 11))
        ()
    in
    for r = 0 to requesters - 1 do
      Machine.spawn machine ~on:(node_procs + r)
        (Thread.repeat 40 (fun i -> Thread.ignore_m (Btree.lookup tree (i * 97 mod 16500))))
    done;
    Machine.run machine;
    let root = Processor.busy_cycles (Machine.proc machine (Btree.root_home tree)) in
    let busy = Array.init node_procs (fun p -> Processor.busy_cycles (Machine.proc machine p)) in
    Array.sort (fun a b -> Int.compare b a) busy;
    (root, busy.(0), Machine.now machine)
  in
  let root0, hot0, t0 = run false in
  let root1, hot1, t1 = run true in
  Printf.printf "\n3. Root replication and resource contention (lookup-only workload):\n";
  Printf.printf "   without repl.: root proc %6d busy cycles (hottest %6d), run %6d cycles\n"
    root0 hot0 t0;
  Printf.printf "   with repl.:    root proc %6d busy cycles (hottest %6d), run %6d cycles\n"
    root1 hot1 t1;
  Printf.printf "   (the paper's S4.2: the bottleneck moves from the root to the level below)\n"

(* -- 4. hardware-support components -------------------------------- *)

let hardware_ablation () =
  (* Scheme carries hw as a whole; build the machine by hand to apply
     the two hardware estimates separately. *)
  let run costs =
    let machine = Machine.create ~seed:42 ~n_procs:(24 + 32) ~costs () in
    let env = Sysenv.make machine in
    let cn = Counting_network.create env (Counting_network.Messaging Cm_core.Prelude.Migrate) in
    Cm_workload.Driver.run machine
      { Cm_workload.Driver.requesters = 32; first_proc = 24; think = 0; warmup = 20_000;
        horizon = 150_000 }
      (fun i -> Thread.ignore_m (Counting_network.traverse cn ~input_wire:(i mod 8)))
  in
  let sw = run Costs.software in
  let ni = run (Costs.with_ni_registers Costs.software) in
  let goid = run (Costs.with_goid_hardware Costs.software) in
  let both = run Costs.hardware in
  Printf.printf "\n4. Hardware-support components (CP counting network, 32 requesters):\n";
  List.iter
    (fun (name, (m : Cm_workload.Metrics.t)) ->
      Printf.printf "   %-24s %6.3f req/1000cyc\n" name m.Cm_workload.Metrics.throughput)
    [ ("software", sw); ("+ NI registers", ni); ("+ GOID translation", goid); ("+ both (w/HW)", both) ]

(* -- 5. shared-memory balancer synchronization ---------------------- *)

let sm_sync_ablation () =
  let run ~sm_sync ~lock_backoff =
    let machine =
      Machine.create ~seed:42 ~shards:1 ~n_procs:(24 + 32) ~costs:Costs.software ()
    in
    let env = Sysenv.make machine in
    let cn = Counting_network.create env ~sm_sync ~lock_backoff Counting_network.Shared_memory in
    Cm_workload.Driver.run machine
      { Cm_workload.Driver.requesters = 32; first_proc = 24; think = 0; warmup = 20_000;
        horizon = 150_000 }
      (fun i -> Thread.ignore_m (Counting_network.traverse cn ~input_wire:(i mod 8)))
  in
  Printf.printf "\n5. SM balancer synchronization (32 requesters):\n";
  List.iter
    (fun (name, sm_sync, lock_backoff) ->
      let m = run ~sm_sync ~lock_backoff in
      Printf.printf "   %-26s %6.3f req/1000cyc  %7.2f words/10cyc\n" name
        m.Cm_workload.Metrics.throughput m.Cm_workload.Metrics.bandwidth)
    [
      ("TTS lock, backoff 64",
       Counting_network.Lock_per_balancer, (64, 1024));
      ("TTS lock, backoff 512 (dflt)",
       Counting_network.Lock_per_balancer, (512, 4096));
      ("TTS lock, backoff 2048",
       Counting_network.Lock_per_balancer, (2048, 16384));
      ("atomic fetch-and-toggle",
       Counting_network.Atomic_toggle, (512, 4096));
    ]

(* -- 6. B-tree shared-memory read concurrency ----------------------- *)

let btree_read_mode_ablation () =
  let run read_mode =
    let node_procs = 24 and requesters = 16 in
    let machine =
      Machine.create ~seed:42 ~shards:1 ~n_procs:(node_procs + requesters)
        ~costs:Costs.software ()
    in
    let env = Sysenv.make machine in
    let tree =
      Btree.create env ~mode:Btree.Shared_memory ~fanout:50 ~sm_read_mode:read_mode
        ~node_procs:(Array.init node_procs (fun i -> i))
        ~keys:(List.init 5000 (fun i -> i * 7))
        ()
    in
    Cm_workload.Driver.run machine
      { Cm_workload.Driver.requesters; first_proc = node_procs; think = 0; warmup = 20_000;
        horizon = 150_000 }
      (fun _ ->
        let* r = Thread.rng in
        Thread.ignore_m (Btree.lookup tree (Rng.int r 50_000)))
  in
  Printf.printf "\n6. SM B-tree read concurrency control (lookup-only):\n";
  List.iter
    (fun (name, mode) ->
      let m = run mode in
      Printf.printf "   %-26s %6.3f ops/1000cyc  %7.2f words/10cyc\n" name
        m.Cm_workload.Metrics.throughput m.Cm_workload.Metrics.bandwidth)
    [ ("reader-writer locks (dflt)", Btree_sm.Locked); ("seqlock (lock-free reads)", Btree_sm.Seqlock) ]

(* -- 7. migration granularity: activation vs whole thread ----------- *)

let granularity_ablation () =
  let hops = 8 in
  let activation () =
    let machine = fresh_machine ~n:(hops + 1) () in
    let rt = Runtime.create machine in
    let finished = ref 0 in
    run_to_completion machine
      (let* () =
         Runtime.scope rt ~result_words:2
           (Thread.repeat hops (fun i ->
                Runtime.call rt ~access:Runtime.Migrate ~home:(i + 1) ~args_words:8
                  ~result_words:2 (Thread.compute 50)))
       in
       finished := Machine.now machine;
       Thread.return ());
    (Network.total_words machine.Machine.net, !finished)
  in
  let whole_thread stack_words =
    let machine = fresh_machine ~n:(hops + 1) () in
    let rt = Runtime.create machine in
    let finished = ref 0 in
    run_to_completion machine
      (let* () =
         Thread.repeat hops (fun i ->
             let* () = Runtime.migrate_thread rt ~dst:(i + 1) ~stack_words in
             Thread.compute 50)
       in
       finished := Machine.now machine;
       Thread.return ());
    (Network.total_words machine.Machine.net, !finished)
  in
  let aw, ac = activation () in
  Printf.printf "\n7. Migration granularity over a %d-hop chain (S2.3):\n" hops;
  Printf.printf "   single activation (8-word frame):  %6d words, %6d cycles\n" aw ac;
  List.iter
    (fun stack ->
      let w, c = whole_thread stack in
      Printf.printf "   whole thread (%4d-word stack):    %6d words, %6d cycles\n" stack w c)
    [ 64; 256; 1024 ]

(* -- 8. partial activation migration -------------------------------- *)

let partial_migration_ablation () =
  let hops = 6 in
  let full_words = 24 and carried = 8 in
  let residual = full_words - carried in
  (* A chain of hops where the activation's live state is [full_words]
     words but only [carried] are needed on the common path; with
     probability [touch] (per hop) the residual is needed and must be
     fetched from the origin. *)
  let run ~partial ~touch_every =
    let machine = fresh_machine ~n:(hops + 1) () in
    let rt = Runtime.create machine in
    let finished = ref 0 in
    run_to_completion machine
      (let* () =
         Runtime.scope rt ~result_words:2
           (Thread.repeat hops (fun i ->
                let* () =
                  Runtime.call rt ~access:Runtime.Migrate ~home:(i + 1)
                    ~args_words:(if partial then carried else full_words)
                    ~result_words:2 (Thread.compute 50)
                in
                if partial && touch_every > 0 && i mod touch_every = 0 then
                  Runtime.fetch_residual rt ~origin:0 ~words:residual
                else Thread.return ()))
       in
       finished := Machine.now machine;
       Thread.return ());
    (Network.total_words machine.Machine.net, !finished)
  in
  let fw, fc = run ~partial:false ~touch_every:0 in
  let pw0, pc0 = run ~partial:true ~touch_every:0 in
  let pw2, pc2 = run ~partial:true ~touch_every:2 in
  let pw1, pc1 = run ~partial:true ~touch_every:1 in
  Printf.printf "\n8. Partial activation migration (%d hops, %d live words, %d carried):\n"
    hops full_words carried;
  Printf.printf "   full activation each hop:          %5d words, %6d cycles\n" fw fc;
  Printf.printf "   partial, residual never needed:    %5d words, %6d cycles\n" pw0 pc0;
  Printf.printf "   partial, residual every 2nd hop:   %5d words, %6d cycles\n" pw2 pc2;
  Printf.printf "   partial, residual every hop:       %5d words, %6d cycles\n" pw1 pc1

(* -- 9. network contention model ------------------------------------ *)

let contention_ablation () =
  let run ~net_contention scheme =
    let machine =
      (* The A/B must hold everything but [net_contention] fixed, and
         the contended half cannot shard — pin both halves. *)
      Machine.create ~seed:42 ~shards:1 ~net_contention ~n_procs:(24 + 32)
        ~costs:(Scheme.costs scheme) ()
    in
    let env = Sysenv.make machine in
    let cn = Counting_network.create env (Scheme.counting_mode scheme) in
    Cm_workload.Driver.run machine
      { Cm_workload.Driver.requesters = 32; first_proc = 24; think = 0; warmup = 20_000;
        horizon = 150_000 }
      (fun i -> Thread.ignore_m (Counting_network.traverse cn ~input_wire:(i mod 8)))
  in
  Printf.printf "\n9. Link-contention network model (counting network, 32 requesters):\n";
  List.iter
    (fun scheme ->
      let off = run ~net_contention:false scheme in
      let on = run ~net_contention:true scheme in
      Printf.printf "   %-8s ideal net %6.3f req/1000cyc -> contended %6.3f (%.0f%% kept)\n"
        (Scheme.name scheme) off.Cm_workload.Metrics.throughput
        on.Cm_workload.Metrics.throughput
        (100. *. on.Cm_workload.Metrics.throughput /. off.Cm_workload.Metrics.throughput))
    [ Scheme.Sm; Scheme.Cp { hw = false; repl = false }; Scheme.Rpc { hw = false; repl = false } ]

let run ?quick:_ () =
  Report.print_header "Ablations: the contribution of each design choice";
  short_circuit_ablation ();
  conditional_ablation ();
  replication_ablation ();
  hardware_ablation ();
  sm_sync_ablation ();
  btree_read_mode_ablation ();
  granularity_ablation ();
  partial_migration_ablation ();
  contention_ablation ()

let plan ?(quick = false) () = Plan.serial (fun () -> run ~quick ())
