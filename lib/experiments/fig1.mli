(** Figure 1: the message-count model (§2.5) — simulator vs closed form. *)

val run_messaging : access:Cm_runtime.Runtime.access -> n:int -> m:int -> int
(** Messages the simulator sends for one thread making [n] accesses to
    each of [m] remote items under the given mechanism (model: RPC
    [2nm], migration [m+1]). *)

val run_shmem : n:int -> m:int -> int
(** The same workload over coherent shared memory (model: [2m]). *)

val run : ?quick:bool -> unit -> unit
(** Print the sweep with the closed forms alongside. *)

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
