(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
open Cm_engine
open Cm_machine
open Cm_apps

(* "Millions of users" made concrete: the full-size run keeps 10^6 keys
   live in the table's flat buckets on a 1024-processor machine, with
   Zipf-skewed key popularity concentrating traffic on a few hot
   buckets.  Quick mode shrinks every axis for CI. *)
type size = {
  node_procs : int;
  requesters : int;
  keys : int;
  buckets : int;
  horizon : int;
}

let size ~quick =
  if quick then
    { node_procs = 16; requesters = 8; keys = 20_000; buckets = 1_024; horizon = 120_000 }
  else
    {
      node_procs = 960;
      requesters = 64;
      keys = 1_000_000;
      buckets = 65_536;
      horizon = 400_000;
    }

let bucket_capacity = 64

let modes =
  [ Dht.Messaging Cm_core.Prelude.Rpc; Dht.Messaging Cm_core.Prelude.Migrate; Dht.Adaptive ]

(* Exponents: 0.99 is YCSB's "zipfian"; 1.3 is a hot-key regime where
   the top handful of keys dominate the traffic. *)
let skews = [ 0.99; 1.3 ]

(* 80% reads / 20% updates on the same skewed popularity — keys are
   preloaded, so updates overwrite in place and buckets never grow.
   The loop is direct-style: the rng read and both table calls are
   saturated applications, and the get's result-dropping continuation
   is cached per requester (the driver passes the same [k] every
   iteration), so a steady-state request allocates nothing beyond the
   call itself. *)
let request table zipf _i =
  let drop = ref None in
  fun c k ->
    let dropk =
      match !drop with
      | Some (k0, f) when k0 == k -> f
      | _ ->
        let f (_ : int option) = k () in
        drop := Some (k, f);
        f
    in
    let r = Thread.Frame.rng c in
    let key = Zipf.sample zipf r in
    if Rng.int r 10 < 8 then Dht.get table key c dropk else Dht.put table ~key ~value:key c k

let measure_sim_words ~quick ~fused mode skew =
  let sz = size ~quick in
  let machine =
    Machine.create ~seed:42
      (* The adaptive table learns from machine-global call order and
         refuses sharded machines (see Adaptive.create). *)
      ?shards:(match mode with Dht.Messaging _ -> None | _ -> Some 1)
      ~n_procs:(sz.node_procs + sz.requesters) ~costs:Costs.software ()
  in
  let env = Sysenv.make machine in
  let table =
    Dht.create env ~buckets:sz.buckets ~bucket_capacity ~fused ~mode
      ~node_procs:(Array.init sz.node_procs (fun i -> i))
      ()
  in
  (* The table's 10^6 entries are installed directly — real time, not
     simulated time; the measurement window sees a full, steady-state
     table from its first cycle. *)
  for k = 0 to sz.keys - 1 do
    Dht.preload table ~key:k ~value:k
  done;
  let zipf = Zipf.create ~s:skew ~n:sz.keys in
  (* Minor words are sampled around the simulation alone — construction
     and preload excluded — so the figure is the steady-state per-op
     allocation the [bench sites] A/B divides by [Metrics.ops]. *)
  let words0 = Gc.minor_words () in
  let metrics =
    Cm_workload.Driver.run machine
      {
        Cm_workload.Driver.requesters = sz.requesters;
        first_proc = sz.node_procs;
        think = 0;
        warmup = sz.horizon / 5;
        horizon = sz.horizon;
      }
      (request table zipf)
  in
  (machine, metrics, Gc.minor_words () -. words0)

let measure_with_machine ~quick ?(fused = true) mode skew =
  let machine, metrics, _ = measure_sim_words ~quick ~fused mode skew in
  (machine, metrics)

let measure ~quick mode skew = snd (measure_with_machine ~quick mode skew)

let jobs ~quick =
  List.concat_map (fun skew -> List.map (fun mode () -> measure ~quick mode skew) modes) skews

let render ~quick results =
  let sz = size ~quick in
  Report.print_header "Extension: Zipf-skewed DHT traffic (hot keys at scale)";
  Printf.printf "   %d keys, %d buckets, %d node procs, %d requesters\n" sz.keys sz.buckets
    sz.node_procs sz.requesters;
  List.iter2
    (fun skew ms ->
      let z = Zipf.create ~s:skew ~n:sz.keys in
      Printf.printf "\n-- zipf s=%.2f (hottest key %.1f%% of traffic) --\n" skew
        (100. *. Zipf.mass z 0);
      List.iter2
        (fun mode m ->
          Printf.printf "   %-14s %8.3f ops/1000cyc  %8.2f words/10cyc  mean latency %6.0f\n"
            (Dht.mode_name mode) m.Cm_workload.Metrics.throughput
            m.Cm_workload.Metrics.bandwidth m.Cm_workload.Metrics.mean_latency)
        modes ms)
    skews
    (Plan.chunk (List.length modes) results);
  Report.print_note
    "Skew concentrates point accesses on a few home processors; both mechanisms";
  Report.print_note
    "pay the same two-message toll per isolated access, so the race is between";
  Report.print_note
    "occupancy at the hot homes.  The adaptive policy should track the better";
  Report.print_note "static choice as skew rises."

let plan ?(quick = false) () = Plan.sweep ~jobs:(jobs ~quick) ~render:(render ~quick)

let run ?(quick = false) () = Plan.execute (plan ~quick ())
