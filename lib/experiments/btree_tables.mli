(** Shared machinery for Tables 1-4: scheme lists, the paper's published
    values, and the measurement/formatting helpers. *)

val all_schemes : Scheme.t list
(** The nine schemes of Tables 1/2, in the paper's row order. *)

val think_schemes : Scheme.t list
(** The three schemes of Tables 3/4. *)

val paper_throughput_t1 : Scheme.t -> float option
val paper_bandwidth_t2 : Scheme.t -> float option
val paper_throughput_t3 : Scheme.t -> float option
val paper_bandwidth_t4 : Scheme.t -> float option

val config : quick:bool -> think:int -> Btree_run.config
(** The experiment configuration (reduced horizon when [quick]). *)

val jobs : quick:bool -> think:int -> Scheme.t list -> Plan.job list
(** One sweep-point job per scheme, in row order; pair the results back
    with the schemes ([List.combine]) to feed {!rows}. *)

val rows :
  paper:(Scheme.t -> float option) ->
  metric:[ `Throughput | `Bandwidth ] ->
  (Scheme.t * Cm_workload.Metrics.t) list ->
  Report.row list
