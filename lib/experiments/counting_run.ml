open Cm_machine
open Cm_apps

type config = { requesters : int; think : int; horizon : int; warmup : int; seed : int }

let default = { requesters = 16; think = 0; horizon = 300_000; warmup = 20_000; seed = 42 }

let balancer_procs = 24

let run_with_machine scheme config =
  let machine =
    Machine.create ~seed:config.seed
      ?shards:(if Scheme.shardable scheme then None else Some 1)
      ~n_procs:(balancer_procs + config.requesters)
      ~costs:(Scheme.costs scheme) ()
  in
  let env = Sysenv.make machine in
  let cn = Counting_network.create env (Scheme.counting_mode scheme) in
  (* One traversal monad per input wire, built once: a ['a Thread.t] is a
     function of (ctx, k), so re-running it replays the traversal without
     rebuilding the invoke/scope closure chain per request. *)
  let w = Counting_network.width cn in
  let traversals =
    Array.init w (fun wire ->
        Cm_machine.Thread.ignore_m (Counting_network.traverse cn ~input_wire:wire))
  in
  let request i = traversals.(i mod w) in
  let metrics =
    Cm_workload.Driver.run machine
      {
        Cm_workload.Driver.requesters = config.requesters;
        first_proc = balancer_procs;
        think = config.think;
        warmup = config.warmup;
        horizon = config.horizon;
      }
      request
  in
  (machine, metrics)

let run scheme config = snd (run_with_machine scheme config)
