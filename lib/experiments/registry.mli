(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by name for the CLI and the benchmark
    harness. *)

type entry = {
  id : string;  (** CLI name, e.g. ["fig2"], ["table1"] *)
  title : string;
  plan : ?quick:bool -> unit -> Plan.t;
      (** Build the experiment's plan: sweep points as jobs plus a
          render, or a serial procedure (see {!Plan}). *)
}

val all : entry list
(** Every experiment, in paper order: fig1, fig2, fig3, table1-table5,
    fanout10, plus the design-choice ablations. *)

val find : string -> entry option
(** Look an experiment up by [id]. *)

val run : ?quick:bool -> ?pool:Cm_engine.Pool.t -> entry -> unit
(** [run ?quick ?pool entry] executes the entry's plan; sweep points
    fan out over [pool] when one is given, and the printed output is
    byte-identical either way. *)

val run_all : ?quick:bool -> ?pool:Cm_engine.Pool.t -> unit -> unit
(** Run every experiment in order (sharing [pool] across them). *)
