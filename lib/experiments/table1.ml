(* Table 1: B-tree throughput (operations / 1000 cycles), zero think
   time, all nine schemes. *)

let render ms =
  Report.print_header "Table 1: B-tree throughput, 0-cycle think time";
  Report.print_table ~metric:"ops/1000cyc"
    (Btree_tables.rows ~paper:Btree_tables.paper_throughput_t1 ~metric:`Throughput
       (List.combine Btree_tables.all_schemes ms));
  Report.print_note
    "Paper shape: SM first; CP beats RPC throughout; HW support and root replication";
  Report.print_note "each close part of the gap, and CP w/repl.&HW approaches SM."

let plan ?(quick = false) () =
  Plan.sweep ~jobs:(Btree_tables.jobs ~quick ~think:0 Btree_tables.all_schemes) ~render

let run ?(quick = false) () = Plan.execute (plan ~quick ())
