(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
(* Figure 1: the message-count model.  One thread on P0 makes n
   consecutive accesses to each of m data items on processors 1..m.
   The paper's model: RPC 2nm messages, data migration 2m (plus
   coherence), computation migration m+1.  We count the messages the
   simulator actually sends and print them against the closed forms. *)

open Cm_machine
open Cm_runtime
open Thread.Infix

let run_messaging ~access ~n ~m =
  let machine = Machine.create ~seed:1 ~n_procs:(m + 1) ~costs:Costs.software () in
  let rt = Runtime.create machine in
  Machine.spawn machine ~on:0
    (Runtime.scope rt ~result_words:2
       (Thread.iter_list
          (fun item ->
            Thread.repeat n (fun _ ->
                Thread.ignore_m
                  (Runtime.call rt ~access ~home:item ~args_words:8 ~result_words:2
                     (Thread.compute 10))))
          (List.init m (fun i -> i + 1))));
  Machine.run machine;
  Network.total_messages machine.Machine.net

let run_shmem ~n ~m =
  let machine = Machine.create ~seed:1 ~shards:1 ~n_procs:(m + 1) ~costs:Costs.software () in
  let mem = Cm_memory.Shmem.create machine in
  let addrs = List.init m (fun i -> Cm_memory.Shmem.alloc mem ~home:(i + 1) ~words:1) in
  Machine.spawn machine ~on:0
    (Thread.iter_list
       (fun a ->
         Thread.repeat n (fun _ ->
             let* _ = Cm_memory.Shmem.read mem a in
             Thread.compute 10))
       addrs);
  Machine.run machine;
  Network.total_messages machine.Machine.net

(* The cells are cheap and the printing is interleaved with the runs, so
   this experiment stays a serial plan. *)
let run ?quick:_ () =
  Report.print_header
    "Figure 1: messages for one thread making n accesses to each of m remote items";
  Printf.printf "%4s %4s  %14s %14s  %14s %14s  %14s %14s\n" "n" "m" "RPC (2nm)" "measured"
    "DM (2m)" "measured" "CP (m+1)" "measured";
  List.iter
    (fun (n, m) ->
      let rpc = run_messaging ~access:Runtime.Rpc ~n ~m in
      let cp = run_messaging ~access:Runtime.Migrate ~n ~m in
      let dm = run_shmem ~n ~m in
      Printf.printf "%4d %4d  %14d %14d  %14d %14d  %14d %14d\n" n m (2 * n * m) rpc (2 * m) dm
        (m + 1) cp)
    [ (1, 1); (2, 4); (4, 8); (8, 16); (16, 32) ];
  Report.print_note
    "The simulator reproduces the paper's message model exactly: computation";
  Report.print_note
    "migration short-circuits returns, so repeated and chained accesses cost one";
  Report.print_note "message each plus a single reply."

let plan ?(quick = false) () = Plan.serial (fun () -> run ~quick ())
