(* lint: allow-file printf — report/presentation layer: printing tables to stdout
   is this module's purpose. *)
open Cm_engine
open Cm_machine
open Cm_apps
open Thread.Infix

let node_procs = 16

let requesters = 8

let buckets = 64

type workload = Points | Scans | Mixed

let workload_name = function Points -> "point get/put" | Scans -> "range scans" | Mixed -> "mixed"

let modes =
  [
    Dht.Messaging Cm_core.Prelude.Rpc;
    Dht.Messaging Cm_core.Prelude.Migrate;
    Dht.Shared_memory;
    Dht.Adaptive;
  ]

let request table workload _i =
  let* r = Thread.rng in
  let point () =
    let key = Rng.int r 5000 in
    if Rng.bool r then Thread.ignore_m (Dht.get table key)
    else Dht.put table ~key ~value:key
  in
  let scan () =
    Thread.ignore_m (Dht.range_sum table ~first_bucket:(Rng.int r buckets) ~n_buckets:12)
  in
  match workload with
  | Points -> point ()
  | Scans -> scan ()
  | Mixed -> if Rng.int r 4 = 0 then scan () else point ()

let measure ~quick mode workload =
  let horizon = if quick then 120_000 else 400_000 in
  let machine =
    Machine.create ~seed:42
      (* Shared-memory and adaptive tables serialize on machine-global
         state and refuse sharded machines; pin them to one shard so a
         global CM_SHARDS default still runs the whole sweep. *)
      ?shards:(match mode with Dht.Messaging _ -> None | _ -> Some 1)
      ~n_procs:(node_procs + requesters) ~costs:Costs.software ()
  in
  let env = Sysenv.make machine in
  let table =
    Dht.create env ~buckets ~bucket_capacity:256 ~mode
      ~node_procs:(Array.init node_procs (fun i -> i))
      ()
  in
  (* Preload outside the measurement window. *)
  Machine.spawn machine ~on:node_procs
    (Thread.repeat 500 (fun i -> Dht.put table ~key:(i * 7 mod 5000) ~value:i));
  Cm_workload.Driver.run machine
    {
      Cm_workload.Driver.requesters;
      first_proc = node_procs;
      think = 0;
      warmup = horizon / 5;
      horizon;
    }
    (request table workload)

let workloads = [ Points; Scans; Mixed ]

let jobs ~quick =
  List.concat_map
    (fun workload -> List.map (fun mode () -> measure ~quick mode workload) modes)
    workloads

let render results =
  Report.print_header "Extension: distributed hash table across mechanisms";
  List.iter2
    (fun workload ms ->
      Printf.printf "\n-- %s --\n" (workload_name workload);
      List.iter2
        (fun mode m ->
          Printf.printf "   %-14s %8.3f ops/1000cyc  %8.2f words/10cyc  mean latency %6.0f\n"
            (Dht.mode_name mode) m.Cm_workload.Metrics.throughput
            m.Cm_workload.Metrics.bandwidth m.Cm_workload.Metrics.mean_latency)
        modes ms)
    workloads
    (Plan.chunk (List.length modes) results);
  Report.print_note
    "Point operations: RPC and migration tie (isolated accesses cost two messages";
  Report.print_note
    "either way); range scans: migration wins by chaining; the adaptive policy";
  Report.print_note "tracks the better static choice on each workload."

let plan ?(quick = false) () = Plan.sweep ~jobs:(jobs ~quick) ~render

let run ?(quick = false) () = Plan.execute (plan ~quick ())
