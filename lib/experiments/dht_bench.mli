(** Extension experiment (beyond the paper): the distributed hash table
    under every mechanism plus adaptive selection, on a point-operation
    workload, a range-scan workload, and a mix.

    The paper's §1 claim is that no mechanism wins everywhere and the
    programmer (or compiler) should choose per access; this experiment
    demonstrates the claim quantitatively and shows the §6 future-work
    adaptive policy tracking the best static choice on each workload. *)

val run : ?quick:bool -> unit -> unit

val plan : ?quick:bool -> unit -> Plan.t
(** The experiment as a {!Plan} — sweep experiments expose their points
    as pool-schedulable jobs; bespoke ones stay serial. *)
