type job = unit -> Cm_workload.Metrics.t

type t =
  | Sweep of { jobs : job list; render : Cm_workload.Metrics.t list -> unit }
  | Serial of (unit -> unit)

let sweep ~jobs ~render = Sweep { jobs; render }

let serial f = Serial f

let job_count = function Serial _ -> 0 | Sweep { jobs; _ } -> List.length jobs

let execute ?pool t =
  match t with
  | Serial f -> f ()
  | Sweep { jobs; render } ->
    let results =
      match pool with
      | None -> List.map (fun job -> job ()) jobs
      | Some p -> Cm_engine.Pool.run_all p jobs
    in
    render results

let chunk n xs =
  if n <= 0 then invalid_arg "Plan.chunk: chunk size must be positive";
  let rec go acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if k = n then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (k + 1) rest
  in
  go [] [] 0 xs
