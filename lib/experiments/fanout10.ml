(* Section 4.2's contention-relief experiment: with nodes of at most 10
   keys (instead of 100), the level below the root stops being a
   bottleneck and computation migration with a replicated root gets much
   closer to shared memory (paper: CP w/repl. 2.076 vs SM 2.427
   operations / 1000 cycles). *)

let paper = function
  | Scheme.Sm -> Some 2.427
  | Scheme.Cp { hw = false; repl = true } -> Some 2.076
  | Scheme.Rpc _ | Scheme.Cp _ -> None

let schemes = [ Scheme.Sm; Scheme.Cp { hw = false; repl = true } ]

let paper100 = function
  | Scheme.Sm -> Some 1.837
  | Scheme.Cp { hw = false; repl = true } -> Some 1.155
  | Scheme.Rpc _ | Scheme.Cp _ -> None

(* Jobs: the two schemes at fanout 10, then the same two at fanout 100
   for the contrast the paper draws. *)
let jobs ~quick =
  let config10 =
    let base = Btree_tables.config ~quick ~think:0 in
    { base with Btree_run.fanout = 10; fill = 0.75 }
  in
  let config100 = Btree_tables.config ~quick ~think:0 in
  List.map (fun s () -> Btree_run.run s config10) schemes
  @ List.map (fun s () -> Btree_run.run s config100) schemes

let render results =
  let ms10, ms100 =
    match Plan.chunk (List.length schemes) results with
    | [ a; b ] -> (a, b)
    | _ -> invalid_arg "fanout10: bad result shape"
  in
  Report.print_header "Fanout-10 B-tree: relieving the below-root bottleneck (S4.2)";
  Report.print_table ~metric:"ops/1000cyc"
    (Btree_tables.rows ~paper ~metric:`Throughput (List.combine schemes ms10));
  Report.print_note "For contrast, the same schemes at fanout 100:";
  Report.print_table ~metric:"ops/1000cyc"
    (List.map2
       (fun s m ->
         {
           Report.label = Scheme.name s ^ " (fanout 100)";
           paper = paper100 s;
           measured = m.Cm_workload.Metrics.throughput;
         })
       schemes ms100);
  Report.print_note
    "Paper shape: small nodes narrow the SM advantage (2.427 vs 2.076, i.e. ~1.17x,";
  Report.print_note "down from ~1.6x at fanout 100)."

let plan ?(quick = false) () = Plan.sweep ~jobs:(jobs ~quick) ~render

let run ?(quick = false) () = Plan.execute (plan ~quick ())
