open Cm_machine
open Cm_runtime

type t = { rt : Runtime.t }

type access = Runtime.access = Rpc | Migrate

let create machine = { rt = Runtime.create machine }

let runtime t = t.rt

let machine t = Runtime.machine t.rt

type 'state obj = { home : int; state : 'state }

let make_obj t ~home state =
  if home < 0 || home >= Machine.n_procs (machine t) then
    invalid_arg "Prelude.make_obj: bad home processor";
  { home; state }

let obj_home o = o.home

let obj_state o = o.state

let default_args_words = 8

let default_result_words = 2

let invoke t ~access ?(args_words = default_args_words) ?(result_words = default_result_words) o
    m =
  Runtime.call t.rt ~access ~home:o.home ~args_words ~result_words (fun c k ->
      (* Instance methods always execute at the invoked object (Prelude's
         calling convention); the runtime guarantees this. *)
      assert (Processor.id (Thread.Frame.proc c) = o.home);
      m o.state c k)

let invoke_site t ~access ?(args_words = default_args_words)
    ?(result_words = default_result_words) o m =
  (* The method is bound to its object's state once, here; what repeats
     per call is only the fused site invocation (see [Runtime.site]). *)
  let body = m o.state in
  let checked c k =
    assert (Processor.id (Thread.Frame.proc c) = o.home);
    body c k
  in
  Runtime.site_call
    (Runtime.site t.rt ~access ~home:o.home ~args_words ~result_words checked)

let proc t ?at_base ?(result_words = default_result_words) body =
  Runtime.scope t.rt ?at_base ~result_words body
