open Cm_machine
open Cm_runtime

(* Objects are bare indices into one per-instance [Objspace] — the
   struct-of-arrays store holds every object's home and payload, so a
   ['state obj] is an immediate int (an [obj array] is a flat int
   vector, never a pointer table) and [obj_home] is one unboxed load.
   The ['state] parameter is phantom: [make_obj] is the only producer,
   so the payload stored at an index always has the type its obj
   carries. *)
type t = { rt : Runtime.t; objs : Obj.t Objspace.t }

type access = Runtime.access = Rpc | Migrate

type 'state obj = int

let create machine = { rt = Runtime.create machine; objs = Objspace.create machine }

let runtime t = t.rt

let space t = t.objs

let machine t = Runtime.machine t.rt

let make_obj t ~home state =
  if home < 0 || home >= Machine.n_procs (machine t) then
    invalid_arg "Prelude.make_obj: bad home processor";
  (Objspace.register t.objs ~home (Obj.repr state) :> int)

let obj_home t o = Objspace.home t.objs (Objspace.id_of_int o)

let obj_state (type s) t (o : s obj) : s = Obj.obj (Objspace.state t.objs (Objspace.id_of_int o))

let default_args_words = 8

let default_result_words = 2

let invoke t ~access ?(args_words = default_args_words) ?(result_words = default_result_words) o
    m =
  let home = obj_home t o in
  Runtime.call t.rt ~access ~home ~args_words ~result_words (fun c k ->
      (* Instance methods always execute at the invoked object (Prelude's
         calling convention); the runtime guarantees this. *)
      assert (Processor.id (Thread.Frame.proc c) = home);
      m (obj_state t o) c k)

let invoke_site t ~access ?(args_words = default_args_words)
    ?(result_words = default_result_words) o m =
  (* The method is bound to its object's state once, here; what repeats
     per call is only the fused site invocation (see [Runtime.site]). *)
  let home = obj_home t o in
  let body = m (obj_state t o) in
  let checked c k =
    assert (Processor.id (Thread.Frame.proc c) = home);
    body c k
  in
  Runtime.site_call (Runtime.site t.rt ~access ~home ~args_words ~result_words checked)

let proc t ?at_base ?(result_words = default_result_words) body =
  Runtime.scope t.rt ?at_base ~result_words body
