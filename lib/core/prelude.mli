(** The annotation-level programming interface — the paper's contribution
    as an API.

    Programs are written in a shared-memory style against objects with
    instance methods; {e where} a remote access executes is chosen by an
    annotation, not by restructuring the program:

    {[
      (* One balancer traversal step; [access] is the annotation. *)
      let step prelude ~access balancer =
        Prelude.invoke prelude ~access balancer (fun state ->
            let out = toggle state in
            Thread.return out)
    ]}

    Changing [~access] between {!Runtime.Rpc} and {!Runtime.Migrate}
    switches the remote-access mechanism without touching the program's
    logic — the property the paper argues makes tuning and porting
    practical (Section 3.1): the annotation affects performance, never
    semantics.  Instance methods always execute at the object's home
    processor; a local invocation costs only the locality check.

    {!proc} delimits a procedure activation for migration purposes: under
    [Migrate] annotations the activation hops from object to object and
    its result returns to the origin in a single message (or, for an
    activation at the base of its stack, is short-circuited to wherever
    the thread finishes). *)

open Cm_machine
open Cm_runtime

type t
(** A Prelude program instance on some machine. *)

type access = Runtime.access = Rpc | Migrate
(** The remote-access annotation. *)

val create : Machine.t -> t
(** [create machine] is a fresh instance. *)

val runtime : t -> Runtime.t
val machine : t -> Machine.t

val space : t -> Obj.t Objspace.t
(** The instance's flat object store — for building
    {!Runtime.msite}-fused method tables over this instance's objects
    (an ['state obj] is a raw index into it). *)

(** {1 Objects} *)

type 'state obj = private int
(** An object with mutable local state of type ['state], living on a
    fixed home processor.  Objects are bare indices into the instance's
    flat object space: an ['state obj] is an immediate int, so arrays of
    objects are flat int vectors and object handles are free to copy
    into simulated messages.  The home and payload live in the store —
    look them up with {!obj_home} / {!obj_state}. *)

val make_obj : t -> home:int -> 'state -> 'state obj
(** [make_obj t ~home state] creates an object on processor [home]. *)

val obj_home : t -> 'state obj -> int
(** The object's home processor — one unboxed load from the instance's
    home table. *)

val obj_state : t -> 'state obj -> 'state
(** Direct access to the payload — for construction and tests only;
    simulated code must go through {!invoke}. *)

(** {1 Invocation} *)

val default_args_words : int
(** Message payload assumed for an invocation's arguments / migrated live
    variables when not specified: 8 words (32 bytes), the paper's Table 5
    calibration size. *)

val default_result_words : int
(** Reply payload when not specified: 2 words. *)

val invoke :
  t ->
  access:access ->
  ?args_words:int ->
  ?result_words:int ->
  'state obj ->
  ('state -> 'r Thread.t) ->
  'r Thread.t
(** [invoke t ~access o m] calls instance method [m] on object [o]; [m]
    executes on [o]'s home processor with the object's state in hand.
    Under [Migrate] the calling activation moves to the home and stays
    there after the call; under [Rpc] the caller blocks for the reply and
    stays put. *)

val invoke_site :
  t ->
  access:access ->
  ?args_words:int ->
  ?result_words:int ->
  'state obj ->
  ('state -> 'r Thread.t) ->
  'r Thread.t
(** [invoke_site t ~access o m] is {!invoke} with the access bound once:
    [m] is applied to [o]'s state immediately and the returned monad is
    a fused {!Runtime.site} invocation.  Events, counters, and digests
    are identical to {!invoke}; use it for methods invoked many times
    (build the monad at construction, run it per call) — the
    steady-state path re-derives nothing per visit. *)

val proc : t -> ?at_base:bool -> ?result_words:int -> 'r Thread.t -> 'r Thread.t
(** [proc t body] runs [body] as one migratable procedure activation (see
    {!Runtime.scope}). *)
